//! The unified simulation-backend layer.
//!
//! Every way of executing a circuit in this workspace goes through one of
//! three engines: the dense state vector ([`crate::state::StateVector`],
//! exponential in qubit count, exact for arbitrary gates), the
//! Aaronson–Gottesman tableau ([`crate::stabilizer::StabilizerSim`],
//! polynomial, Clifford-only), or the matrix-product state
//! ([`crate::mps::MpsState`], polynomial in qubits at fixed bond dimension
//! χ, arbitrary gates but approximate once entanglement exceeds χ). This
//! module gives them a common face:
//!
//! * [`classify`] — a circuit-analysis pass that buckets a [`Circuit`] into
//!   a [`CircuitClass`] (Clifford unitary / Clifford with measurement and
//!   classical control / general) by walking its ops;
//!   [`interaction_range`] measures how far apart multi-qubit gates reach,
//!   the locality signal the MPS heuristic keys on.
//! * [`BackendChoice`] — the caller-facing selector: [`BackendChoice::Auto`]
//!   (the default) picks the tableau for Clifford circuits too large for a
//!   comfortable dense run, the MPS engine for over-cap general circuits
//!   with short-range interactions, and the dense engine otherwise;
//!   `Dense`, `Tableau` and `Mps` force an engine and fail loudly when it
//!   cannot run the circuit.
//! * [`resolve`] — the dispatch rule itself, returning a [`BackendKind`] or
//!   a typed [`SimError`] instead of panicking at a capacity cap.
//! * [`Backend`] / [`BackendState`] — the object-safe traits the executor
//!   drives: gate application, Pauli error injection, measurement, reset
//!   and reinitialisation, implemented by [`DenseBackend`],
//!   [`TableauBackend`] and [`MpsBackend`].
//!
//! # Dispatch rules (`BackendChoice::Auto`)
//!
//! | circuit | qubits | engine |
//! |---|---|---|
//! | Clifford (incl. measure/reset/conditionals) | ≤ [`AUTO_DENSE_MAX_QUBITS`] | dense |
//! | Clifford | > [`AUTO_DENSE_MAX_QUBITS`] | tableau |
//! | general | ≤ [`DENSE_QUBIT_CAP`] | dense |
//! | general, [`interaction_range`] ≤ [`AUTO_MPS_MAX_RANGE`] | > [`DENSE_QUBIT_CAP`] | mps (χ = [`MPS_DEFAULT_MAX_BOND`]) |
//! | general, long-range | > [`DENSE_QUBIT_CAP`] | [`SimError::QubitCapExceeded`] |
//!
//! MPS runs are approximate when the circuit's entanglement exceeds the
//! bond bound; the accumulated fidelity loss is tracked per run and
//! surfaces as the typed [`SimError::TruncationBudgetExceeded`] when it
//! passes the executor's budget — never silently.
//!
//! Classical registers are unbounded on every engine: outcomes travel as
//! packed multi-word [`crate::word::OutcomeWord`]s through
//! [`crate::dist::Counts`], with registers of up to 64 bits staying on an
//! allocation-free inline representation. (The pre-multi-word layer
//! refused >64-clbit circuits with a `TooManyClbits` error; that cap and
//! the error variant are gone.)
//!
//! Pauli noise channels ([`crate::noise::NoiseModel`]) are
//! backend-agnostic: every state implements
//! [`BackendState::apply_pauli`], so depolarizing/idle errors and classical
//! readout flips work identically on all three engines.

use crate::mps::MpsState;
use crate::noise::Pauli;
use crate::stabilizer::StabilizerSim;
use crate::state::StateVector;
use qcir::circuit::{Circuit, Op};
use qcir::gate::Gate;
use rand::RngCore;
use std::fmt;
use std::str::FromStr;

/// Hard cap on dense simulation (the amplitude vector would exceed a
/// gigabyte past this). Mirrors the assertion in [`StateVector::zero`].
pub const DENSE_QUBIT_CAP: usize = 26;

/// Sanity cap on tableau simulation (quadratic memory in qubits; 4096
/// qubits is a 4 MB tableau and far beyond every workload here).
pub const TABLEAU_QUBIT_CAP: usize = 4096;

/// Under [`BackendChoice::Auto`], Clifford circuits at or below this many
/// qubits still run densely: at small sizes the state vector fits in cache
/// and beats the tableau's per-op row scans, and the dense engine keeps its
/// exact-sampling fast path for noiseless end-measured circuits.
pub const AUTO_DENSE_MAX_QUBITS: usize = 12;

/// Sanity cap on MPS simulation: memory is `O(n·χ²)`, so thousands of
/// qubits are representable, but nothing in this workspace goes near it.
pub const MPS_QUBIT_CAP: usize = 1024;

/// Bond-dimension bound used when [`BackendChoice::Auto`] dispatches to
/// the MPS engine (callers wanting a different χ force
/// [`BackendChoice::Mps`] explicitly).
pub const MPS_DEFAULT_MAX_BOND: usize = 64;

/// Under [`BackendChoice::Auto`], a general circuit past the dense cap
/// dispatches to the MPS engine only when every multi-qubit gate spans at
/// most this many sites ([`interaction_range`]): short-range circuits keep
/// their SWAP-routing overhead small and are the regime where bounded-χ
/// simulation is trustworthy.
pub const AUTO_MPS_MAX_RANGE: usize = 8;

/// A typed simulation failure, returned by the fallible execution entry
/// points ([`crate::exec::Executor::try_run`] and friends) instead of the
/// panics the pre-backend-layer API used.
///
/// Every variant carries a machine-readable payload: [`SimError::code`] is
/// a stable identifier for the failure class, and the fields name the
/// concrete limit in force (e.g. a refusal from the MPS engine carries
/// `backend: "mps", cap: 1024` — the resolved backend and *its* cap, not a
/// generic message), so services can surface refusals over the wire
/// without string-matching [`fmt::Display`] output.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The circuit needs more qubits than the chosen engine can represent.
    QubitCapExceeded {
        /// Engine that refused, as a stable machine-readable identifier
        /// (`"dense"` / `"tableau"` / `"mps"`; grading guards substitute
        /// their own label).
        backend: &'static str,
        /// Qubits the circuit declares.
        num_qubits: usize,
        /// The engine's cap.
        cap: usize,
    },
    /// The tableau engine was chosen (or forced) for a circuit containing a
    /// non-Clifford gate.
    NonCliffordGate {
        /// The first offending gate.
        gate: Gate,
    },
    /// An MPS run truncated more than the executor's budget allows: the
    /// produced counts would come from a state whose fidelity loss can
    /// exceed what the caller accepted. Raise the bond dimension, raise
    /// the budget ([`crate::exec::ExecutorConfig::truncation_budget`]), or
    /// use an exact engine.
    TruncationBudgetExceeded {
        /// The bond-dimension bound the run used.
        max_bond: usize,
        /// Worst per-trajectory truncation-infidelity bound observed
        /// across the run (`(Σ√(2δ))²` over each trajectory's discarded
        /// weights δ, clamped to 1 — rigorous, not a first-order
        /// estimate).
        error_bound: f64,
        /// The budget that was exceeded.
        budget: f64,
    },
}

impl SimError {
    /// Stable machine-readable identifier for the failure class
    /// (`qubit_cap` / `non_clifford` / `truncation_budget`) — the `code`
    /// field wire protocols key error handling on, so adding a message
    /// detail never breaks a client.
    pub fn code(&self) -> &'static str {
        match self {
            SimError::QubitCapExceeded { .. } => "qubit_cap",
            SimError::NonCliffordGate { .. } => "non_clifford",
            SimError::TruncationBudgetExceeded { .. } => "truncation_budget",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitCapExceeded {
                backend,
                num_qubits,
                cap,
            } => write!(
                f,
                "{backend} backend capped at {cap} qubits, circuit needs {num_qubits}"
            ),
            SimError::NonCliffordGate { gate } => {
                write!(f, "tableau backend cannot apply non-Clifford gate `{gate}`")
            }
            SimError::TruncationBudgetExceeded {
                max_bond,
                error_bound,
                budget,
            } => write!(
                f,
                "mps run at bond dimension {max_bond} reached a truncation-infidelity bound \
                 of {error_bound:.3e}, over the {budget:.3e} truncation budget"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// The result of the circuit-analysis pass: how much simulator structure a
/// circuit exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitClass {
    /// Clifford gates only; no measurement, reset or classical control.
    /// Stabilizer-simulable end to end, and the final state is a pure
    /// stabilizer state.
    CliffordUnitary,
    /// Clifford gates plus measurement / reset / classically-conditioned
    /// Clifford gates. Still polynomial on the tableau (measurements are
    /// `O(n^2)`).
    CliffordDynamic,
    /// Contains at least one non-Clifford gate; only the dense engine can
    /// run it.
    General,
}

impl CircuitClass {
    /// `true` when the tableau engine can simulate this class.
    pub fn is_clifford(&self) -> bool {
        !matches!(self, CircuitClass::General)
    }
}

/// Walks the op list and classifies the circuit for backend dispatch.
///
/// Conditionally-applied gates count like unconditional ones (the tableau
/// engine evaluates the classical condition per trajectory); barriers are
/// ignored.
pub fn classify(circuit: &Circuit) -> CircuitClass {
    let mut dynamic = false;
    for op in circuit.ops() {
        match op {
            Op::Gate { gate, .. } => {
                if !gate.is_clifford() {
                    return CircuitClass::General;
                }
            }
            Op::CondGate { gate, .. } => {
                if !gate.is_clifford() {
                    return CircuitClass::General;
                }
                dynamic = true;
            }
            Op::Measure { .. } | Op::Reset { .. } => dynamic = true,
            Op::Barrier { .. } => {}
        }
    }
    if dynamic {
        CircuitClass::CliffordDynamic
    } else {
        CircuitClass::CliffordUnitary
    }
}

/// The first non-Clifford gate in program order, if any (for error
/// reporting).
pub fn first_non_clifford(circuit: &Circuit) -> Option<Gate> {
    circuit.ops().iter().find_map(|op| match op {
        Op::Gate { gate, .. } | Op::CondGate { gate, .. } if !gate.is_clifford() => Some(*gate),
        _ => None,
    })
}

/// The widest span any multi-qubit gate covers: `max(q_max − q_min)` over
/// all gate and conditional-gate ops (0 for single-qubit-only circuits).
///
/// On the MPS engine a gate spanning `w` sites costs `O(w)` transient
/// SWAPs, and circuits whose gates stay short-range are exactly the
/// low-entanglement regime where bounded bond dimension is faithful — so
/// [`BackendChoice::Auto`] only routes to MPS below [`AUTO_MPS_MAX_RANGE`].
pub fn interaction_range(circuit: &Circuit) -> usize {
    circuit
        .ops()
        .iter()
        .filter_map(|op| match op {
            Op::Gate { qubits, .. } | Op::CondGate { qubits, .. } if qubits.len() > 1 => {
                let lo = qubits.iter().min().expect("non-empty operand list");
                let hi = qubits.iter().max().expect("non-empty operand list");
                Some(hi - lo)
            }
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// Caller-facing backend selector.
///
/// Hashable so it can be part of a result-cache identity
/// ([`crate::job::JobKey`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// Pick automatically from the circuit class and size (see the module
    /// docs for the dispatch table).
    #[default]
    Auto,
    /// Force the dense state-vector engine.
    Dense,
    /// Force the stabilizer-tableau engine (Clifford circuits only).
    Tableau,
    /// Force the matrix-product-state engine with the given bond bound.
    Mps {
        /// Maximum bond dimension χ (clamped to ≥ 1 by the engine).
        max_bond: usize,
    },
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendChoice::Auto => f.write_str("auto"),
            BackendChoice::Dense => f.write_str("dense"),
            BackendChoice::Tableau => f.write_str("tableau"),
            BackendChoice::Mps { max_bond } => write!(f, "mps:{max_bond}"),
        }
    }
}

/// Why a backend-selector string failed to parse (the typed
/// [`FromStr`] error for [`BackendChoice`], and what
/// [`try_choice_from_env`] reports for a malformed `QUGEN_BACKEND`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendParseError {
    /// The backend name matched none of `auto|dense|tableau|mps[:χ]`.
    UnknownBackend {
        /// The offending (trimmed) input.
        value: String,
    },
    /// The `mps:<χ>` suffix was not a positive integer.
    InvalidBondDimension {
        /// The offending χ suffix.
        value: String,
    },
    /// `mps:0` — a χ=0 train cannot hold any state.
    ZeroBondDimension,
}

impl fmt::Display for BackendParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendParseError::UnknownBackend { value } => {
                write!(
                    f,
                    "unknown backend `{value}` (expected auto|dense|tableau|mps[:χ])"
                )
            }
            BackendParseError::InvalidBondDimension { value } => {
                write!(
                    f,
                    "invalid mps bond dimension `{value}` (expected a positive integer)"
                )
            }
            BackendParseError::ZeroBondDimension => {
                f.write_str("mps bond dimension must be at least 1")
            }
        }
    }
}

impl std::error::Error for BackendParseError {}

impl FromStr for BackendChoice {
    type Err = BackendParseError;

    /// Parses `auto`, `dense`, `tableau`, `mps`, or `mps:<χ>` (the format
    /// the `QUGEN_BACKEND` environment variable uses). Surrounding
    /// whitespace is ignored — env values often pick up stray spaces or a
    /// trailing newline from shell interpolation.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "auto" => Ok(BackendChoice::Auto),
            "dense" => Ok(BackendChoice::Dense),
            "tableau" => Ok(BackendChoice::Tableau),
            "mps" => Ok(BackendChoice::Mps {
                max_bond: MPS_DEFAULT_MAX_BOND,
            }),
            other => {
                if let Some(chi) = other.strip_prefix("mps:") {
                    let max_bond: usize =
                        chi.parse()
                            .map_err(|_| BackendParseError::InvalidBondDimension {
                                value: chi.to_string(),
                            })?;
                    if max_bond == 0 {
                        return Err(BackendParseError::ZeroBondDimension);
                    }
                    Ok(BackendChoice::Mps { max_bond })
                } else {
                    Err(BackendParseError::UnknownBackend {
                        value: other.to_string(),
                    })
                }
            }
        }
    }
}

/// Reads the `QUGEN_BACKEND` environment variable (`auto|dense|tableau|`
/// `mps[:χ]`) so benches and examples are backend-scriptable from CI
/// without code edits. Unset means `Ok(`[`BackendChoice::Auto`]`)`.
///
/// # Errors
///
/// Returns the typed [`BackendParseError`] on a malformed value; callers
/// that would rather fail a CI job than fall back can `expect` it.
pub fn try_choice_from_env() -> Result<BackendChoice, BackendParseError> {
    match std::env::var("QUGEN_BACKEND") {
        Ok(v) => v.parse(),
        Err(_) => Ok(BackendChoice::Auto),
    }
}

/// [`try_choice_from_env`] with a non-aborting fallback: a malformed
/// `QUGEN_BACKEND` logs a warning to stderr and resolves to
/// [`BackendChoice::Auto`], so a typo in the environment cannot abort a
/// long batch run half-way through.
pub fn choice_from_env() -> BackendChoice {
    try_choice_from_env().unwrap_or_else(|e| {
        eprintln!("warning: QUGEN_BACKEND: {e}; falling back to auto dispatch");
        BackendChoice::Auto
    })
}

/// A concrete engine, after [`resolve`] has applied the dispatch rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Dense state-vector simulation.
    Dense,
    /// Stabilizer-tableau simulation.
    Tableau,
    /// Matrix-product-state simulation at the given bond bound.
    Mps {
        /// Maximum bond dimension χ.
        max_bond: usize,
    },
}

impl BackendKind {
    /// The engine's display name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Tableau => "tableau",
            BackendKind::Mps { .. } => "mps",
        }
    }

    /// Instantiates the engine behind the [`Backend`] trait.
    pub fn build(&self) -> Box<dyn Backend> {
        match *self {
            BackendKind::Dense => Box::new(DenseBackend),
            BackendKind::Tableau => Box::new(TableauBackend),
            BackendKind::Mps { max_bond } => Box::new(MpsBackend::new(max_bond)),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies the dispatch rules: which engine runs `circuit` under `choice`?
///
/// # Errors
///
/// [`SimError::NonCliffordGate`] when the tableau is forced on a general
/// circuit, and [`SimError::QubitCapExceeded`] when the circuit fits no
/// admissible engine. Classical-register width never refuses a circuit:
/// outcomes are multi-word.
pub fn resolve(choice: BackendChoice, circuit: &Circuit) -> Result<BackendKind, SimError> {
    let n = circuit.num_qubits();
    let dense_ok = |label| {
        if n <= DENSE_QUBIT_CAP {
            Ok(BackendKind::Dense)
        } else {
            Err(SimError::QubitCapExceeded {
                backend: label,
                num_qubits: n,
                cap: DENSE_QUBIT_CAP,
            })
        }
    };
    let tableau_ok = || {
        if let Some(gate) = first_non_clifford(circuit) {
            return Err(SimError::NonCliffordGate { gate });
        }
        if n <= TABLEAU_QUBIT_CAP {
            Ok(BackendKind::Tableau)
        } else {
            Err(SimError::QubitCapExceeded {
                backend: "tableau",
                num_qubits: n,
                cap: TABLEAU_QUBIT_CAP,
            })
        }
    };
    let mps_ok = |max_bond: usize| {
        if n <= MPS_QUBIT_CAP {
            Ok(BackendKind::Mps { max_bond })
        } else {
            Err(SimError::QubitCapExceeded {
                backend: "mps",
                num_qubits: n,
                cap: MPS_QUBIT_CAP,
            })
        }
    };
    match choice {
        BackendChoice::Dense => dense_ok("dense"),
        BackendChoice::Tableau => tableau_ok(),
        BackendChoice::Mps { max_bond } => mps_ok(max_bond),
        BackendChoice::Auto => {
            if classify(circuit).is_clifford() && n > AUTO_DENSE_MAX_QUBITS {
                tableau_ok()
            } else if n > DENSE_QUBIT_CAP && interaction_range(circuit) <= AUTO_MPS_MAX_RANGE {
                // General circuit past the dense cap but with short-range
                // interactions: the low-entanglement regime the MPS engine
                // targets. Long-range circuits keep the dense refusal below.
                mps_ok(MPS_DEFAULT_MAX_BOND)
            } else {
                dense_ok("dense")
            }
        }
    }
}

/// A simulation engine: validates circuits and mints fresh states.
///
/// Object-safe so the executor can hold `Box<dyn Backend>`; `Send + Sync`
/// so resolved backends can be shared across shot-execution threads.
pub trait Backend: Send + Sync {
    /// Display name (`"dense"` / `"tableau"`).
    fn name(&self) -> &'static str;

    /// The engine's qubit capacity.
    fn qubit_cap(&self) -> usize;

    /// Checks that this engine can run `circuit`.
    ///
    /// # Errors
    ///
    /// The same [`SimError`] conditions as [`resolve`] for this engine.
    fn supports(&self, circuit: &Circuit) -> Result<(), SimError>;

    /// Creates the |0…0> state on `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// [`SimError::QubitCapExceeded`] past [`Backend::qubit_cap`].
    fn init(&self, num_qubits: usize) -> Result<Box<dyn BackendState>, SimError>;
}

/// One simulated register mid-trajectory: the operations the executor's
/// shot loop needs, shared by both engines.
///
/// Gate application is infallible here by contract: the executor validates
/// the whole circuit against the backend ([`Backend::supports`] /
/// [`resolve`]) before the first shot, so per-op `Result` plumbing would
/// only re-check what is already known.
pub trait BackendState: Send {
    /// Number of qubits.
    fn num_qubits(&self) -> usize;

    /// Resets the register to |0…0> in place (so trajectory loops reuse the
    /// allocation instead of re-creating the state per shot).
    fn reinit(&mut self);

    /// Applies a gate in gate-operand order.
    ///
    /// # Panics
    ///
    /// Panics on operand errors or (tableau) non-Clifford gates; both are
    /// excluded by the pre-run validation contract above.
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]);

    /// Injects a single-qubit Pauli error (the noise-channel hot path).
    fn apply_pauli(&mut self, qubit: usize, pauli: Pauli);

    /// Measures `qubit` in the computational basis, collapsing the state.
    fn measure(&mut self, qubit: usize, rng: &mut dyn RngCore) -> bool;

    /// Resets `qubit` to |0>.
    fn reset(&mut self, qubit: usize, rng: &mut dyn RngCore);

    /// Upper bound on the fidelity loss this state has accumulated from
    /// engine approximations (the MPS truncation ledger's rigorous
    /// `(Σ√(2δ))²` bound, maximized across the trajectories the state has
    /// run). Exact engines return 0.
    fn truncation_error(&self) -> f64 {
        0.0
    }
}

/// The dense state-vector engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseBackend;

impl Backend for DenseBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn qubit_cap(&self) -> usize {
        DENSE_QUBIT_CAP
    }

    fn supports(&self, circuit: &Circuit) -> Result<(), SimError> {
        resolve(BackendChoice::Dense, circuit).map(|_| ())
    }

    fn init(&self, num_qubits: usize) -> Result<Box<dyn BackendState>, SimError> {
        if num_qubits > DENSE_QUBIT_CAP {
            return Err(SimError::QubitCapExceeded {
                backend: "dense",
                num_qubits,
                cap: DENSE_QUBIT_CAP,
            });
        }
        Ok(Box::new(DenseState(StateVector::zero(num_qubits))))
    }
}

/// [`BackendState`] over a [`StateVector`].
#[derive(Debug, Clone)]
struct DenseState(StateVector);

impl BackendState for DenseState {
    fn num_qubits(&self) -> usize {
        self.0.num_qubits()
    }

    fn reinit(&mut self) {
        self.0.reinit();
    }

    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.0.apply_gate(gate, qubits);
    }

    fn apply_pauli(&mut self, qubit: usize, pauli: Pauli) {
        self.0.apply_pauli(qubit, pauli);
    }

    fn measure(&mut self, qubit: usize, mut rng: &mut dyn RngCore) -> bool {
        self.0.measure(qubit, &mut rng)
    }

    fn reset(&mut self, qubit: usize, mut rng: &mut dyn RngCore) {
        self.0.reset(qubit, &mut rng);
    }
}

/// The stabilizer-tableau engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct TableauBackend;

impl Backend for TableauBackend {
    fn name(&self) -> &'static str {
        "tableau"
    }

    fn qubit_cap(&self) -> usize {
        TABLEAU_QUBIT_CAP
    }

    fn supports(&self, circuit: &Circuit) -> Result<(), SimError> {
        resolve(BackendChoice::Tableau, circuit).map(|_| ())
    }

    fn init(&self, num_qubits: usize) -> Result<Box<dyn BackendState>, SimError> {
        if num_qubits > TABLEAU_QUBIT_CAP {
            return Err(SimError::QubitCapExceeded {
                backend: "tableau",
                num_qubits,
                cap: TABLEAU_QUBIT_CAP,
            });
        }
        Ok(Box::new(TableauState(StabilizerSim::new(num_qubits))))
    }
}

/// [`BackendState`] over a [`StabilizerSim`].
#[derive(Debug, Clone)]
struct TableauState(StabilizerSim);

impl BackendState for TableauState {
    fn num_qubits(&self) -> usize {
        self.0.num_qubits()
    }

    fn reinit(&mut self) {
        self.0.reinit();
    }

    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.0.apply_gate(gate, qubits);
    }

    fn apply_pauli(&mut self, qubit: usize, pauli: Pauli) {
        match pauli {
            Pauli::X => self.0.x_gate(qubit),
            Pauli::Y => self.0.y_gate(qubit),
            Pauli::Z => self.0.z_gate(qubit),
        }
    }

    fn measure(&mut self, qubit: usize, mut rng: &mut dyn RngCore) -> bool {
        self.0.measure(qubit, &mut rng)
    }

    fn reset(&mut self, qubit: usize, mut rng: &mut dyn RngCore) {
        self.0.reset(qubit, &mut rng);
    }
}

/// The matrix-product-state engine with a configured bond bound.
#[derive(Debug, Clone, Copy)]
pub struct MpsBackend {
    max_bond: usize,
}

impl MpsBackend {
    /// An MPS engine truncating at bond dimension `max_bond` (clamped ≥ 1).
    pub fn new(max_bond: usize) -> Self {
        MpsBackend {
            max_bond: max_bond.max(1),
        }
    }

    /// The configured bond bound.
    pub fn max_bond(&self) -> usize {
        self.max_bond
    }
}

impl Default for MpsBackend {
    fn default() -> Self {
        MpsBackend::new(MPS_DEFAULT_MAX_BOND)
    }
}

impl Backend for MpsBackend {
    fn name(&self) -> &'static str {
        "mps"
    }

    fn qubit_cap(&self) -> usize {
        MPS_QUBIT_CAP
    }

    fn supports(&self, circuit: &Circuit) -> Result<(), SimError> {
        resolve(
            BackendChoice::Mps {
                max_bond: self.max_bond,
            },
            circuit,
        )
        .map(|_| ())
    }

    fn init(&self, num_qubits: usize) -> Result<Box<dyn BackendState>, SimError> {
        if num_qubits > MPS_QUBIT_CAP {
            return Err(SimError::QubitCapExceeded {
                backend: "mps",
                num_qubits,
                cap: MPS_QUBIT_CAP,
            });
        }
        Ok(Box::new(MpsBackendState(MpsState::new(
            num_qubits,
            self.max_bond,
        ))))
    }
}

/// [`BackendState`] over an [`MpsState`].
#[derive(Debug, Clone)]
struct MpsBackendState(MpsState);

impl BackendState for MpsBackendState {
    fn num_qubits(&self) -> usize {
        self.0.num_qubits()
    }

    fn reinit(&mut self) {
        self.0.reinit();
    }

    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.0.apply_gate(gate, qubits);
    }

    fn apply_pauli(&mut self, qubit: usize, pauli: Pauli) {
        self.0.apply_pauli(qubit, pauli);
    }

    fn measure(&mut self, qubit: usize, mut rng: &mut dyn RngCore) -> bool {
        self.0.measure(qubit, &mut rng)
    }

    fn reset(&mut self, qubit: usize, mut rng: &mut dyn RngCore) {
        self.0.reset(qubit, &mut rng);
    }

    fn truncation_error(&self) -> f64 {
        self.0.truncation_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ghz(n: usize) -> Circuit {
        let mut qc = Circuit::new(n, n);
        qc.h(0);
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
        qc.measure_all();
        qc
    }

    #[test]
    fn classify_buckets() {
        let mut unitary = Circuit::new(2, 0);
        unitary.h(0).cx(0, 1);
        assert_eq!(classify(&unitary), CircuitClass::CliffordUnitary);
        assert!(classify(&unitary).is_clifford());

        assert_eq!(classify(&ghz(3)), CircuitClass::CliffordDynamic);

        let mut general = Circuit::new(2, 2);
        general.h(0).t(0).cx(0, 1);
        assert_eq!(classify(&general), CircuitClass::General);
        assert!(!classify(&general).is_clifford());
        assert_eq!(first_non_clifford(&general), Some(Gate::T));

        let mut cond = Circuit::new(1, 1);
        cond.measure(0, 0);
        cond.cond_gate(Gate::T, &[0], 0, true);
        assert_eq!(classify(&cond), CircuitClass::General);
    }

    #[test]
    fn auto_dispatch_follows_size_and_class() {
        assert_eq!(
            resolve(BackendChoice::Auto, &ghz(4)).unwrap(),
            BackendKind::Dense
        );
        assert_eq!(
            resolve(BackendChoice::Auto, &ghz(AUTO_DENSE_MAX_QUBITS + 1)).unwrap(),
            BackendKind::Tableau
        );
        // Long-range general circuit past the dense cap: no admissible
        // engine (the MPS heuristic refuses wide interactions).
        let mut big_general = Circuit::new(30, 30);
        big_general.h(0).t(0).cp(0.3, 0, 29);
        assert!(interaction_range(&big_general) > AUTO_MPS_MAX_RANGE);
        assert_eq!(
            resolve(BackendChoice::Auto, &big_general),
            Err(SimError::QubitCapExceeded {
                backend: "dense",
                num_qubits: 30,
                cap: DENSE_QUBIT_CAP,
            })
        );
    }

    #[test]
    fn auto_dispatches_short_range_general_circuits_to_mps() {
        // 30 qubits, nearest-neighbor non-Clifford gates: over the dense
        // cap but MPS-eligible.
        let mut qc = Circuit::new(30, 30);
        for q in 0..29 {
            qc.t(q);
            qc.cx(q, q + 1);
        }
        assert_eq!(classify(&qc), CircuitClass::General);
        assert_eq!(interaction_range(&qc), 1);
        assert_eq!(
            resolve(BackendChoice::Auto, &qc).unwrap(),
            BackendKind::Mps {
                max_bond: MPS_DEFAULT_MAX_BOND
            }
        );
        // Under the dense cap the dense engine still wins.
        let mut small = Circuit::new(5, 5);
        small.t(0).cx(0, 1);
        assert_eq!(
            resolve(BackendChoice::Auto, &small).unwrap(),
            BackendKind::Dense
        );
    }

    #[test]
    fn interaction_range_measures_gate_spans() {
        let mut qc = Circuit::new(8, 8);
        assert_eq!(interaction_range(&qc), 0);
        qc.h(3);
        assert_eq!(interaction_range(&qc), 0);
        qc.cx(1, 2);
        assert_eq!(interaction_range(&qc), 1);
        qc.ccx(0, 4, 7);
        assert_eq!(interaction_range(&qc), 7);
    }

    #[test]
    fn backend_choice_parses_the_env_format() {
        assert_eq!("auto".parse(), Ok(BackendChoice::Auto));
        assert_eq!("dense".parse(), Ok(BackendChoice::Dense));
        assert_eq!("tableau".parse(), Ok(BackendChoice::Tableau));
        assert_eq!(
            "mps".parse(),
            Ok(BackendChoice::Mps {
                max_bond: MPS_DEFAULT_MAX_BOND
            })
        );
        assert_eq!("mps:32".parse(), Ok(BackendChoice::Mps { max_bond: 32 }));
        // Errors are typed, so callers and tests can match on the cause.
        assert_eq!(
            "mps:0".parse::<BackendChoice>(),
            Err(BackendParseError::ZeroBondDimension)
        );
        assert_eq!(
            "mps:abc".parse::<BackendChoice>(),
            Err(BackendParseError::InvalidBondDimension {
                value: "abc".into()
            })
        );
        assert_eq!(
            "cuda".parse::<BackendChoice>(),
            Err(BackendParseError::UnknownBackend {
                value: "cuda".into()
            })
        );
        // Display round-trips through the same grammar.
        for choice in [
            BackendChoice::Auto,
            BackendChoice::Dense,
            BackendChoice::Tableau,
            BackendChoice::Mps { max_bond: 7 },
        ] {
            assert_eq!(choice.to_string().parse(), Ok(choice));
        }
    }

    #[test]
    fn backend_choice_parsing_ignores_surrounding_whitespace() {
        // Env values routinely pick up a trailing newline or padding from
        // shell interpolation; the value inside must still parse strictly.
        assert_eq!(" dense ".parse(), Ok(BackendChoice::Dense));
        assert_eq!("\tmps:8\n".parse(), Ok(BackendChoice::Mps { max_bond: 8 }));
        assert_eq!(
            "  mps:0 ".parse::<BackendChoice>(),
            Err(BackendParseError::ZeroBondDimension)
        );
        // Interior whitespace is not forgiven.
        assert!("mps: 8".parse::<BackendChoice>().is_err());
    }

    #[test]
    fn malformed_backend_env_falls_back_instead_of_panicking() {
        // `choice_from_env` reads a process-global; mutating it from a test
        // would race other threads. Exercise the fallback through the same
        // seam it uses.
        let fallback = "definitely-not-a-backend"
            .parse::<BackendChoice>()
            .unwrap_or_else(|e| {
                assert!(matches!(e, BackendParseError::UnknownBackend { .. }));
                BackendChoice::Auto
            });
        assert_eq!(fallback, BackendChoice::Auto);
        // With the variable unset, the env reader resolves to Auto.
        if std::env::var("QUGEN_BACKEND").is_err() {
            assert_eq!(try_choice_from_env(), Ok(BackendChoice::Auto));
            assert_eq!(choice_from_env(), BackendChoice::Auto);
        }
    }

    #[test]
    fn forced_mps_accepts_general_circuits() {
        let mut t = Circuit::new(3, 3);
        t.h(0).t(0).ccx(0, 1, 2).measure_all();
        assert_eq!(
            resolve(BackendChoice::Mps { max_bond: 8 }, &t).unwrap(),
            BackendKind::Mps { max_bond: 8 }
        );
        let wide = Circuit::new(MPS_QUBIT_CAP + 1, 0);
        assert!(matches!(
            resolve(BackendChoice::Mps { max_bond: 8 }, &wide),
            Err(SimError::QubitCapExceeded { backend: "mps", .. })
        ));
    }

    #[test]
    fn forced_backends_validate() {
        let mut t = Circuit::new(1, 1);
        t.t(0).measure(0, 0);
        assert_eq!(
            resolve(BackendChoice::Tableau, &t),
            Err(SimError::NonCliffordGate { gate: Gate::T })
        );
        let big = ghz(49);
        assert_eq!(
            resolve(BackendChoice::Tableau, &big).unwrap(),
            BackendKind::Tableau
        );
        assert!(matches!(
            resolve(BackendChoice::Dense, &big),
            Err(SimError::QubitCapExceeded {
                backend: "dense",
                ..
            })
        ));
    }

    #[test]
    fn wide_classical_registers_resolve() {
        // Register width no longer refuses circuits: outcomes are
        // multi-word, so a 97-clbit register (distance-7 memory) resolves
        // like any other.
        let wide = Circuit::new(2, 97);
        assert_eq!(
            resolve(BackendChoice::Auto, &wide).unwrap(),
            BackendKind::Dense
        );
        assert_eq!(
            resolve(BackendChoice::Tableau, &wide).unwrap(),
            BackendKind::Tableau
        );
    }

    #[test]
    fn both_states_agree_on_a_deterministic_trajectory() {
        // |11> via X on both qubits, measured: identical on every engine.
        for kind in [
            BackendKind::Dense,
            BackendKind::Tableau,
            BackendKind::Mps { max_bond: 4 },
        ] {
            let backend = kind.build();
            let mut state = backend.init(2).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            state.apply_gate(Gate::X, &[0]);
            state.apply_gate(Gate::X, &[1]);
            assert!(state.measure(0, &mut rng), "{kind}");
            state.apply_pauli(0, Pauli::X);
            assert!(!state.measure(0, &mut rng), "{kind}");
            assert!(state.measure(1, &mut rng), "{kind}");
            state.reset(1, &mut rng);
            assert!(!state.measure(1, &mut rng), "{kind}");
            state.reinit();
            assert!(!state.measure(0, &mut rng), "{kind} after reinit");
        }
    }

    #[test]
    fn error_codes_and_payloads_are_machine_readable() {
        // A short-range general circuit past the MPS qubit cap must name
        // the resolved backend ("mps") and its cap (1024) in the payload —
        // no string matching needed to route the refusal.
        let mut huge = Circuit::new(MPS_QUBIT_CAP + 1, 0);
        huge.t(0);
        let err = resolve(BackendChoice::Auto, &huge).unwrap_err();
        assert_eq!(err.code(), "qubit_cap");
        assert!(matches!(
            err,
            SimError::QubitCapExceeded {
                backend: "mps",
                cap: MPS_QUBIT_CAP,
                num_qubits,
            } if num_qubits == MPS_QUBIT_CAP + 1
        ));
        assert_eq!(
            SimError::NonCliffordGate { gate: Gate::T }.code(),
            "non_clifford"
        );
        assert_eq!(
            SimError::TruncationBudgetExceeded {
                max_bond: 8,
                error_bound: 0.25,
                budget: 0.01,
            }
            .code(),
            "truncation_budget"
        );
    }

    #[test]
    fn error_messages_render() {
        let e = SimError::NonCliffordGate { gate: Gate::T };
        assert!(e.to_string().contains("non-Clifford"));
        let e = SimError::TruncationBudgetExceeded {
            max_bond: 8,
            error_bound: 0.25,
            budget: 0.01,
        };
        assert!(e.to_string().contains("truncation budget"));
    }

    #[test]
    fn mps_backend_reports_truncation_through_the_trait() {
        let backend = MpsBackend::new(1);
        let mut state = backend.init(2).unwrap();
        state.apply_gate(Gate::H, &[0]);
        state.apply_gate(Gate::CX, &[0, 1]);
        assert!(state.truncation_error() > 0.4);
        // Exact engines report zero.
        let mut dense = DenseBackend.init(2).unwrap();
        dense.apply_gate(Gate::H, &[0]);
        assert_eq!(dense.truncation_error(), 0.0);
    }
}
