//! The unified simulation-backend layer.
//!
//! Every way of executing a circuit in this workspace goes through one of
//! two engines: the dense state vector ([`crate::state::StateVector`],
//! exponential in qubit count, exact for arbitrary gates) or the
//! Aaronson–Gottesman tableau ([`crate::stabilizer::StabilizerSim`],
//! polynomial, Clifford-only). This module gives them a common face:
//!
//! * [`classify`] — a circuit-analysis pass that buckets a [`Circuit`] into
//!   a [`CircuitClass`] (Clifford unitary / Clifford with measurement and
//!   classical control / general) by walking its ops.
//! * [`BackendChoice`] — the caller-facing selector: [`BackendChoice::Auto`]
//!   (the default) picks the tableau for Clifford circuits too large for a
//!   comfortable dense run and the dense engine otherwise; `Dense` and
//!   `Tableau` force an engine and fail loudly when it cannot run the
//!   circuit.
//! * [`resolve`] — the dispatch rule itself, returning a [`BackendKind`] or
//!   a typed [`SimError`] instead of panicking at a capacity cap.
//! * [`Backend`] / [`BackendState`] — the object-safe traits the executor
//!   drives: gate application, Pauli error injection, measurement, reset
//!   and reinitialisation, implemented by [`DenseBackend`] and
//!   [`TableauBackend`].
//!
//! # Dispatch rules (`BackendChoice::Auto`)
//!
//! | circuit | qubits | engine |
//! |---|---|---|
//! | Clifford (incl. measure/reset/conditionals) | ≤ [`AUTO_DENSE_MAX_QUBITS`] | dense |
//! | Clifford | > [`AUTO_DENSE_MAX_QUBITS`] | tableau |
//! | general | ≤ [`DENSE_QUBIT_CAP`] | dense |
//! | general | > [`DENSE_QUBIT_CAP`] | [`SimError::QubitCapExceeded`] |
//!
//! All engines share the [`MAX_CLBITS`] classical-register cap: outcomes
//! travel as packed `u64` words through [`crate::dist::Counts`], so a
//! circuit with more than 64 classical bits is rejected up front instead of
//! silently truncating high bits.
//!
//! Pauli noise channels ([`crate::noise::NoiseModel`]) are
//! backend-agnostic: both states implement
//! [`BackendState::apply_pauli`], so depolarizing/idle errors and classical
//! readout flips work identically on either engine.

use crate::noise::Pauli;
use crate::stabilizer::StabilizerSim;
use crate::state::StateVector;
use qcir::circuit::{Circuit, Op};
use qcir::gate::Gate;
use rand::RngCore;
use std::fmt;

/// Hard cap on dense simulation (the amplitude vector would exceed a
/// gigabyte past this). Mirrors the assertion in [`StateVector::zero`].
pub const DENSE_QUBIT_CAP: usize = 26;

/// Sanity cap on tableau simulation (quadratic memory in qubits; 4096
/// qubits is a 4 MB tableau and far beyond every workload here).
pub const TABLEAU_QUBIT_CAP: usize = 4096;

/// Under [`BackendChoice::Auto`], Clifford circuits at or below this many
/// qubits still run densely: at small sizes the state vector fits in cache
/// and beats the tableau's per-op row scans, and the dense engine keeps its
/// exact-sampling fast path for noiseless end-measured circuits.
pub const AUTO_DENSE_MAX_QUBITS: usize = 12;

/// Classical-register cap: outcomes are packed `u64` words in
/// [`crate::dist::Counts`], so at most 64 classical bits per circuit.
pub const MAX_CLBITS: usize = 64;

/// A typed simulation failure, returned by the fallible execution entry
/// points ([`crate::exec::Executor::try_run`] and friends) instead of the
/// panics the pre-backend-layer API used.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The circuit needs more qubits than the chosen engine can represent.
    QubitCapExceeded {
        /// Engine that refused (`"dense"` / `"tableau"` / a caller label).
        backend: &'static str,
        /// Qubits the circuit declares.
        num_qubits: usize,
        /// The engine's cap.
        cap: usize,
    },
    /// The tableau engine was chosen (or forced) for a circuit containing a
    /// non-Clifford gate.
    NonCliffordGate {
        /// The first offending gate.
        gate: Gate,
    },
    /// The circuit declares more classical bits than fit one outcome word.
    TooManyClbits {
        /// Classical bits the circuit declares.
        num_clbits: usize,
        /// The representation cap ([`MAX_CLBITS`]).
        cap: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitCapExceeded {
                backend,
                num_qubits,
                cap,
            } => write!(
                f,
                "{backend} backend capped at {cap} qubits, circuit needs {num_qubits}"
            ),
            SimError::NonCliffordGate { gate } => {
                write!(f, "tableau backend cannot apply non-Clifford gate `{gate}`")
            }
            SimError::TooManyClbits { num_clbits, cap } => write!(
                f,
                "classical register of {num_clbits} bits exceeds the {cap}-bit outcome word"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// The result of the circuit-analysis pass: how much simulator structure a
/// circuit exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitClass {
    /// Clifford gates only; no measurement, reset or classical control.
    /// Stabilizer-simulable end to end, and the final state is a pure
    /// stabilizer state.
    CliffordUnitary,
    /// Clifford gates plus measurement / reset / classically-conditioned
    /// Clifford gates. Still polynomial on the tableau (measurements are
    /// `O(n^2)`).
    CliffordDynamic,
    /// Contains at least one non-Clifford gate; only the dense engine can
    /// run it.
    General,
}

impl CircuitClass {
    /// `true` when the tableau engine can simulate this class.
    pub fn is_clifford(&self) -> bool {
        !matches!(self, CircuitClass::General)
    }
}

/// Walks the op list and classifies the circuit for backend dispatch.
///
/// Conditionally-applied gates count like unconditional ones (the tableau
/// engine evaluates the classical condition per trajectory); barriers are
/// ignored.
pub fn classify(circuit: &Circuit) -> CircuitClass {
    let mut dynamic = false;
    for op in circuit.ops() {
        match op {
            Op::Gate { gate, .. } => {
                if !gate.is_clifford() {
                    return CircuitClass::General;
                }
            }
            Op::CondGate { gate, .. } => {
                if !gate.is_clifford() {
                    return CircuitClass::General;
                }
                dynamic = true;
            }
            Op::Measure { .. } | Op::Reset { .. } => dynamic = true,
            Op::Barrier { .. } => {}
        }
    }
    if dynamic {
        CircuitClass::CliffordDynamic
    } else {
        CircuitClass::CliffordUnitary
    }
}

/// The first non-Clifford gate in program order, if any (for error
/// reporting).
pub fn first_non_clifford(circuit: &Circuit) -> Option<Gate> {
    circuit.ops().iter().find_map(|op| match op {
        Op::Gate { gate, .. } | Op::CondGate { gate, .. } if !gate.is_clifford() => Some(*gate),
        _ => None,
    })
}

/// Caller-facing backend selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Pick automatically from the circuit class and size (see the module
    /// docs for the dispatch table).
    #[default]
    Auto,
    /// Force the dense state-vector engine.
    Dense,
    /// Force the stabilizer-tableau engine (Clifford circuits only).
    Tableau,
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Dense => "dense",
            BackendChoice::Tableau => "tableau",
        })
    }
}

/// A concrete engine, after [`resolve`] has applied the dispatch rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Dense state-vector simulation.
    Dense,
    /// Stabilizer-tableau simulation.
    Tableau,
}

impl BackendKind {
    /// The engine's display name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Tableau => "tableau",
        }
    }

    /// Instantiates the engine behind the [`Backend`] trait.
    pub fn build(&self) -> Box<dyn Backend> {
        match self {
            BackendKind::Dense => Box::new(DenseBackend),
            BackendKind::Tableau => Box::new(TableauBackend),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies the dispatch rules: which engine runs `circuit` under `choice`?
///
/// # Errors
///
/// [`SimError::TooManyClbits`] for >64-bit classical registers,
/// [`SimError::NonCliffordGate`] when the tableau is forced on a general
/// circuit, and [`SimError::QubitCapExceeded`] when the circuit fits no
/// admissible engine.
pub fn resolve(choice: BackendChoice, circuit: &Circuit) -> Result<BackendKind, SimError> {
    if circuit.num_clbits() > MAX_CLBITS {
        return Err(SimError::TooManyClbits {
            num_clbits: circuit.num_clbits(),
            cap: MAX_CLBITS,
        });
    }
    let n = circuit.num_qubits();
    let dense_ok = |label| {
        if n <= DENSE_QUBIT_CAP {
            Ok(BackendKind::Dense)
        } else {
            Err(SimError::QubitCapExceeded {
                backend: label,
                num_qubits: n,
                cap: DENSE_QUBIT_CAP,
            })
        }
    };
    let tableau_ok = || {
        if let Some(gate) = first_non_clifford(circuit) {
            return Err(SimError::NonCliffordGate { gate });
        }
        if n <= TABLEAU_QUBIT_CAP {
            Ok(BackendKind::Tableau)
        } else {
            Err(SimError::QubitCapExceeded {
                backend: "tableau",
                num_qubits: n,
                cap: TABLEAU_QUBIT_CAP,
            })
        }
    };
    match choice {
        BackendChoice::Dense => dense_ok("dense"),
        BackendChoice::Tableau => tableau_ok(),
        BackendChoice::Auto => {
            if classify(circuit).is_clifford() && n > AUTO_DENSE_MAX_QUBITS {
                tableau_ok()
            } else {
                dense_ok("dense")
            }
        }
    }
}

/// A simulation engine: validates circuits and mints fresh states.
///
/// Object-safe so the executor can hold `Box<dyn Backend>`; `Send + Sync`
/// so resolved backends can be shared across shot-execution threads.
pub trait Backend: Send + Sync {
    /// Display name (`"dense"` / `"tableau"`).
    fn name(&self) -> &'static str;

    /// The engine's qubit capacity.
    fn qubit_cap(&self) -> usize;

    /// Checks that this engine can run `circuit`.
    ///
    /// # Errors
    ///
    /// The same [`SimError`] conditions as [`resolve`] for this engine.
    fn supports(&self, circuit: &Circuit) -> Result<(), SimError>;

    /// Creates the |0…0> state on `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// [`SimError::QubitCapExceeded`] past [`Backend::qubit_cap`].
    fn init(&self, num_qubits: usize) -> Result<Box<dyn BackendState>, SimError>;
}

/// One simulated register mid-trajectory: the operations the executor's
/// shot loop needs, shared by both engines.
///
/// Gate application is infallible here by contract: the executor validates
/// the whole circuit against the backend ([`Backend::supports`] /
/// [`resolve`]) before the first shot, so per-op `Result` plumbing would
/// only re-check what is already known.
pub trait BackendState: Send {
    /// Number of qubits.
    fn num_qubits(&self) -> usize;

    /// Resets the register to |0…0> in place (so trajectory loops reuse the
    /// allocation instead of re-creating the state per shot).
    fn reinit(&mut self);

    /// Applies a gate in gate-operand order.
    ///
    /// # Panics
    ///
    /// Panics on operand errors or (tableau) non-Clifford gates; both are
    /// excluded by the pre-run validation contract above.
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]);

    /// Injects a single-qubit Pauli error (the noise-channel hot path).
    fn apply_pauli(&mut self, qubit: usize, pauli: Pauli);

    /// Measures `qubit` in the computational basis, collapsing the state.
    fn measure(&mut self, qubit: usize, rng: &mut dyn RngCore) -> bool;

    /// Resets `qubit` to |0>.
    fn reset(&mut self, qubit: usize, rng: &mut dyn RngCore);
}

/// The dense state-vector engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseBackend;

impl Backend for DenseBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn qubit_cap(&self) -> usize {
        DENSE_QUBIT_CAP
    }

    fn supports(&self, circuit: &Circuit) -> Result<(), SimError> {
        resolve(BackendChoice::Dense, circuit).map(|_| ())
    }

    fn init(&self, num_qubits: usize) -> Result<Box<dyn BackendState>, SimError> {
        if num_qubits > DENSE_QUBIT_CAP {
            return Err(SimError::QubitCapExceeded {
                backend: "dense",
                num_qubits,
                cap: DENSE_QUBIT_CAP,
            });
        }
        Ok(Box::new(DenseState(StateVector::zero(num_qubits))))
    }
}

/// [`BackendState`] over a [`StateVector`].
#[derive(Debug, Clone)]
struct DenseState(StateVector);

impl BackendState for DenseState {
    fn num_qubits(&self) -> usize {
        self.0.num_qubits()
    }

    fn reinit(&mut self) {
        self.0.reinit();
    }

    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.0.apply_gate(gate, qubits);
    }

    fn apply_pauli(&mut self, qubit: usize, pauli: Pauli) {
        self.0.apply_pauli(qubit, pauli);
    }

    fn measure(&mut self, qubit: usize, mut rng: &mut dyn RngCore) -> bool {
        self.0.measure(qubit, &mut rng)
    }

    fn reset(&mut self, qubit: usize, mut rng: &mut dyn RngCore) {
        self.0.reset(qubit, &mut rng);
    }
}

/// The stabilizer-tableau engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct TableauBackend;

impl Backend for TableauBackend {
    fn name(&self) -> &'static str {
        "tableau"
    }

    fn qubit_cap(&self) -> usize {
        TABLEAU_QUBIT_CAP
    }

    fn supports(&self, circuit: &Circuit) -> Result<(), SimError> {
        resolve(BackendChoice::Tableau, circuit).map(|_| ())
    }

    fn init(&self, num_qubits: usize) -> Result<Box<dyn BackendState>, SimError> {
        if num_qubits > TABLEAU_QUBIT_CAP {
            return Err(SimError::QubitCapExceeded {
                backend: "tableau",
                num_qubits,
                cap: TABLEAU_QUBIT_CAP,
            });
        }
        Ok(Box::new(TableauState(StabilizerSim::new(num_qubits))))
    }
}

/// [`BackendState`] over a [`StabilizerSim`].
#[derive(Debug, Clone)]
struct TableauState(StabilizerSim);

impl BackendState for TableauState {
    fn num_qubits(&self) -> usize {
        self.0.num_qubits()
    }

    fn reinit(&mut self) {
        self.0.reinit();
    }

    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.0.apply_gate(gate, qubits);
    }

    fn apply_pauli(&mut self, qubit: usize, pauli: Pauli) {
        match pauli {
            Pauli::X => self.0.x_gate(qubit),
            Pauli::Y => self.0.y_gate(qubit),
            Pauli::Z => self.0.z_gate(qubit),
        }
    }

    fn measure(&mut self, qubit: usize, mut rng: &mut dyn RngCore) -> bool {
        self.0.measure(qubit, &mut rng)
    }

    fn reset(&mut self, qubit: usize, mut rng: &mut dyn RngCore) {
        self.0.reset(qubit, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ghz(n: usize) -> Circuit {
        let mut qc = Circuit::new(n, n);
        qc.h(0);
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
        }
        qc.measure_all();
        qc
    }

    #[test]
    fn classify_buckets() {
        let mut unitary = Circuit::new(2, 0);
        unitary.h(0).cx(0, 1);
        assert_eq!(classify(&unitary), CircuitClass::CliffordUnitary);
        assert!(classify(&unitary).is_clifford());

        assert_eq!(classify(&ghz(3)), CircuitClass::CliffordDynamic);

        let mut general = Circuit::new(2, 2);
        general.h(0).t(0).cx(0, 1);
        assert_eq!(classify(&general), CircuitClass::General);
        assert!(!classify(&general).is_clifford());
        assert_eq!(first_non_clifford(&general), Some(Gate::T));

        let mut cond = Circuit::new(1, 1);
        cond.measure(0, 0);
        cond.cond_gate(Gate::T, &[0], 0, true);
        assert_eq!(classify(&cond), CircuitClass::General);
    }

    #[test]
    fn auto_dispatch_follows_size_and_class() {
        assert_eq!(
            resolve(BackendChoice::Auto, &ghz(4)).unwrap(),
            BackendKind::Dense
        );
        assert_eq!(
            resolve(BackendChoice::Auto, &ghz(AUTO_DENSE_MAX_QUBITS + 1)).unwrap(),
            BackendKind::Tableau
        );
        let mut big_general = Circuit::new(30, 30);
        big_general.h(0).t(0);
        assert_eq!(
            resolve(BackendChoice::Auto, &big_general),
            Err(SimError::QubitCapExceeded {
                backend: "dense",
                num_qubits: 30,
                cap: DENSE_QUBIT_CAP,
            })
        );
    }

    #[test]
    fn forced_backends_validate() {
        let mut t = Circuit::new(1, 1);
        t.t(0).measure(0, 0);
        assert_eq!(
            resolve(BackendChoice::Tableau, &t),
            Err(SimError::NonCliffordGate { gate: Gate::T })
        );
        let big = ghz(49);
        assert_eq!(
            resolve(BackendChoice::Tableau, &big).unwrap(),
            BackendKind::Tableau
        );
        assert!(matches!(
            resolve(BackendChoice::Dense, &big),
            Err(SimError::QubitCapExceeded {
                backend: "dense",
                ..
            })
        ));
    }

    #[test]
    fn clbit_cap_is_enforced() {
        let wide = Circuit::new(2, 65);
        assert_eq!(
            resolve(BackendChoice::Auto, &wide),
            Err(SimError::TooManyClbits {
                num_clbits: 65,
                cap: MAX_CLBITS,
            })
        );
    }

    #[test]
    fn both_states_agree_on_a_deterministic_trajectory() {
        // |11> via X on both qubits, measured: identical on either engine.
        for kind in [BackendKind::Dense, BackendKind::Tableau] {
            let backend = kind.build();
            let mut state = backend.init(2).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            state.apply_gate(Gate::X, &[0]);
            state.apply_gate(Gate::X, &[1]);
            assert!(state.measure(0, &mut rng), "{kind}");
            state.apply_pauli(0, Pauli::X);
            assert!(!state.measure(0, &mut rng), "{kind}");
            assert!(state.measure(1, &mut rng), "{kind}");
            state.reset(1, &mut rng);
            assert!(!state.measure(1, &mut rng), "{kind}");
            state.reinit();
            assert!(!state.measure(0, &mut rng), "{kind} after reinit");
        }
    }

    #[test]
    fn error_messages_render() {
        let e = SimError::NonCliffordGate { gate: Gate::T };
        assert!(e.to_string().contains("non-Clifford"));
        let e = SimError::TooManyClbits {
            num_clbits: 70,
            cap: 64,
        };
        assert!(e.to_string().contains("64-bit"));
    }
}
