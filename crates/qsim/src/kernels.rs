//! Specialized gate-application kernels for the dense state vector.
//!
//! Every kernel here enumerates only the `2^(n-k)` base indices it actually
//! touches — via [`insert_zero_bit`] stride expansion — instead of filtering
//! all `2^n` basis states, and updates amplitudes in place:
//!
//! * **Diagonal tier** ([`apply_diag1`], [`apply_controlled_diag1`]) — pure
//!   phase multiplies, no gather/scatter at all; phase-only gates (Z, S, T,
//!   P, CZ, CP) touch just the set-bit half/quarter of the vector.
//! * **Permutation tier** ([`apply_x`], [`apply_cx`], [`apply_swap`],
//!   [`apply_ccx`], [`apply_cswap`]) — index swaps, no arithmetic.
//! * **Butterfly tier** ([`apply_1q`], [`apply_controlled_1q`],
//!   [`apply_y`]) — closed-form 2x2 updates over index pairs, no matrix
//!   lookup in the inner loop.
//! * **General tier** ([`apply_dense`]) — arbitrary `2^k x 2^k` unitaries
//!   with the scatter-index table hoisted out of the row loop and all
//!   scratch storage reused across calls through [`DenseScratch`].
//!
//! [`crate::state::StateVector::apply_gate`] picks the tier from
//! [`qcir::gate::Gate::kind`]; these functions are also public so other hot
//! paths (noise injection, observables) can call them directly.
//!
//! All kernels require the bit positions to be in range for the amplitude
//! slice (whose length must be a power of two) and mutually distinct; the
//! state-vector wrapper validates once per gate application.

use qcir::math::{Matrix, C64};

/// Returns `x` with a zero bit inserted at position `bit`: bits below `bit`
/// stay, bits at or above shift up by one. Iterating `x` over `0..2^(n-1)`
/// therefore enumerates exactly the indices with bit `bit` clear, in order.
#[inline(always)]
pub fn insert_zero_bit(x: usize, bit: usize) -> usize {
    let low = x & ((1 << bit) - 1);
    low | ((x ^ low) << 1)
}

/// Applies a dense single-qubit unitary `m = [m00, m01, m10, m11]`
/// (row-major) to `qubit` via a butterfly update over index pairs.
pub fn apply_1q(amps: &mut [C64], qubit: usize, m: &[C64; 4]) {
    let step = 1usize << qubit;
    for block in amps.chunks_exact_mut(step << 1) {
        let (lo, hi) = block.split_at_mut(step);
        for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
            let x = *a0;
            let y = *a1;
            *a0 = m[0] * x + m[1] * y;
            *a1 = m[2] * x + m[3] * y;
        }
    }
}

/// Multiplies the `|0>` / `|1>` components of `qubit` by `d0` / `d1`.
///
/// When `d0 == 1` (Z, S, T, P, ...) only the set-bit half of the vector is
/// touched.
pub fn apply_diag1(amps: &mut [C64], qubit: usize, d0: C64, d1: C64) {
    let step = 1usize << qubit;
    let phase_only = d0 == C64::ONE;
    for block in amps.chunks_exact_mut(step << 1) {
        let (lo, hi) = block.split_at_mut(step);
        if !phase_only {
            for a in lo.iter_mut() {
                *a *= d0;
            }
        }
        for a in hi.iter_mut() {
            *a *= d1;
        }
    }
}

/// Pauli-X on `qubit`: swaps paired amplitudes (a pure index permutation).
pub fn apply_x(amps: &mut [C64], qubit: usize) {
    let step = 1usize << qubit;
    for block in amps.chunks_exact_mut(step << 1) {
        let (lo, hi) = block.split_at_mut(step);
        lo.swap_with_slice(hi);
    }
}

/// Pauli-Y on `qubit`: the X swap fused with the `±i` phases, written as
/// component shuffles so the inner loop has no complex multiplies.
pub fn apply_y(amps: &mut [C64], qubit: usize) {
    let step = 1usize << qubit;
    for block in amps.chunks_exact_mut(step << 1) {
        let (lo, hi) = block.split_at_mut(step);
        for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
            let x = *a0;
            let y = *a1;
            *a0 = C64::new(y.im, -y.re); // -i * y
            *a1 = C64::new(-x.im, x.re); // i * x
        }
    }
}

/// Applies a dense single-qubit unitary to `target` on the subspace where
/// `control` is set.
pub fn apply_controlled_1q(amps: &mut [C64], control: usize, target: usize, m: &[C64; 4]) {
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    let (lo, hi) = sort2(control, target);
    for c in 0..amps.len() >> 2 {
        let base = insert_zero_bit(insert_zero_bit(c, lo), hi);
        let i0 = base | cbit;
        let i1 = i0 | tbit;
        let x = amps[i0];
        let y = amps[i1];
        amps[i0] = m[0] * x + m[1] * y;
        amps[i1] = m[2] * x + m[3] * y;
    }
}

/// Multiplies the target's `|0>` / `|1>` components by `d0` / `d1` where
/// `control` is set. When `d0 == 1` (CZ, CP) only indices with both bits set
/// are touched — a quarter of the vector.
pub fn apply_controlled_diag1(amps: &mut [C64], control: usize, target: usize, d0: C64, d1: C64) {
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    let (lo, hi) = sort2(control, target);
    let phase_only = d0 == C64::ONE;
    for c in 0..amps.len() >> 2 {
        let base = insert_zero_bit(insert_zero_bit(c, lo), hi);
        if !phase_only {
            amps[base | cbit] *= d0;
        }
        amps[base | cbit | tbit] *= d1;
    }
}

/// CX: swaps the target pair where `control` is set (index permutation).
pub fn apply_cx(amps: &mut [C64], control: usize, target: usize) {
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    let (lo, hi) = sort2(control, target);
    for c in 0..amps.len() >> 2 {
        let base = insert_zero_bit(insert_zero_bit(c, lo), hi);
        amps.swap(base | cbit, base | cbit | tbit);
    }
}

/// SWAP: exchanges the amplitudes of `a` and `b` (index permutation over the
/// `01`/`10` pairs).
pub fn apply_swap(amps: &mut [C64], a: usize, b: usize) {
    let abit = 1usize << a;
    let bbit = 1usize << b;
    let (lo, hi) = sort2(a, b);
    for c in 0..amps.len() >> 2 {
        let base = insert_zero_bit(insert_zero_bit(c, lo), hi);
        amps.swap(base | abit, base | bbit);
    }
}

/// Toffoli: flips `target` where both controls are set.
pub fn apply_ccx(amps: &mut [C64], control1: usize, control2: usize, target: usize) {
    let c1bit = 1usize << control1;
    let c2bit = 1usize << control2;
    let tbit = 1usize << target;
    let [b0, b1, b2] = sort3(control1, control2, target);
    for c in 0..amps.len() >> 3 {
        let base = insert_zero_bit(insert_zero_bit(insert_zero_bit(c, b0), b1), b2);
        amps.swap(base | c1bit | c2bit, base | c1bit | c2bit | tbit);
    }
}

/// Fredkin: exchanges `a` and `b` where `control` is set.
pub fn apply_cswap(amps: &mut [C64], control: usize, a: usize, b: usize) {
    let cbit = 1usize << control;
    let abit = 1usize << a;
    let bbit = 1usize << b;
    let [b0, b1, b2] = sort3(control, a, b);
    for c in 0..amps.len() >> 3 {
        let base = insert_zero_bit(insert_zero_bit(insert_zero_bit(c, b0), b1), b2);
        amps.swap(base | cbit | abit, base | cbit | bbit);
    }
}

/// Reusable scratch storage for [`apply_dense`], held by the state vector so
/// repeated gate applications allocate nothing after the buffers first grow
/// to the needed size.
#[derive(Debug, Clone, Default)]
pub struct DenseScratch {
    /// Gathered amplitude block (`2^k` entries).
    amps: Vec<C64>,
    /// Per-row scatter offsets (`2^k` entries), hoisted out of the base loop.
    offsets: Vec<usize>,
    /// Target bit positions in ascending order, for stride expansion.
    bits: Vec<usize>,
}

/// Applies an arbitrary `2^k x 2^k` unitary to `qubits` (big-endian:
/// `qubits[0]` is the most significant matrix bit).
///
/// The scatter-index table is computed once per call — not once per base
/// index as the naive formulation does — and base indices are enumerated
/// directly by stride expansion, so the cost is `O(2^n * 2^k)` complex
/// multiply-adds with no per-row bit fiddling.
///
/// # Panics
///
/// Panics when the matrix dimension is not `2^k` for `k = qubits.len()`.
pub fn apply_dense(
    amps: &mut [C64],
    matrix: &Matrix,
    qubits: &[usize],
    scratch: &mut DenseScratch,
) {
    let k = qubits.len();
    let dim = 1usize << k;
    assert_eq!(matrix.dim(), dim, "matrix dimension mismatch");

    scratch.bits.clear();
    scratch.bits.extend_from_slice(qubits);
    scratch.bits.sort_unstable();

    scratch.offsets.clear();
    for row in 0..dim {
        let mut off = 0usize;
        for (j, &q) in qubits.iter().enumerate() {
            if (row >> (k - 1 - j)) & 1 == 1 {
                off |= 1 << q;
            }
        }
        scratch.offsets.push(off);
    }

    scratch.amps.clear();
    scratch.amps.resize(dim, C64::ZERO);

    for c in 0..amps.len() >> k {
        let mut base = c;
        for &b in &scratch.bits {
            base = insert_zero_bit(base, b);
        }
        for (gathered, &off) in scratch.amps.iter_mut().zip(&scratch.offsets) {
            *gathered = amps[base | off];
        }
        for (row, &off) in scratch.offsets.iter().enumerate() {
            let mut acc = C64::ZERO;
            for (col, &amp) in scratch.amps.iter().enumerate() {
                let m = matrix.get(row, col);
                if m != C64::ZERO {
                    acc += m * amp;
                }
            }
            amps[base | off] = acc;
        }
    }
}

#[inline(always)]
fn sort2(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[inline(always)]
fn sort3(a: usize, b: usize, c: usize) -> [usize; 3] {
    let mut v = [a, b, c];
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::gate::Gate;

    /// Random-ish but deterministic normalized amplitudes.
    fn test_amps(n: usize) -> Vec<C64> {
        let len = 1usize << n;
        let mut amps: Vec<C64> = (0..len)
            .map(|i| {
                let x = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                let y = ((i * 40503 + 7) % 1000) as f64 / 1000.0 - 0.5;
                C64::new(x, y)
            })
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut amps {
            *a = *a / norm;
        }
        amps
    }

    /// Oracle: run the same update through the full-scan reference path.
    fn reference(amps: &[C64], matrix: &Matrix, qubits: &[usize]) -> Vec<C64> {
        let mut sv = crate::state::StateVector::from_amplitudes(amps.to_vec());
        sv.apply_matrix_reference(matrix, qubits);
        sv.amplitudes().to_vec()
    }

    fn assert_close(a: &[C64], b: &[C64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.approx_eq(*y, 1e-12), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn insert_zero_bit_enumerates_cleared_indices() {
        // Inserting at bit 1 over 0..4 must yield exactly {0,1,4,5}.
        let got: Vec<usize> = (0..4).map(|x| insert_zero_bit(x, 1)).collect();
        assert_eq!(got, vec![0, 1, 4, 5]);
        // Bit 0: evens.
        let got: Vec<usize> = (0..4).map(|x| insert_zero_bit(x, 0)).collect();
        assert_eq!(got, vec![0, 2, 4, 6]);
    }

    #[test]
    fn butterfly_matches_reference_on_each_qubit() {
        for q in 0..4 {
            for gate in [Gate::H, Gate::SX, Gate::U(0.3, -0.8, 1.7)] {
                let mut a = test_amps(4);
                let b = reference(&a, &gate.matrix(), &[q]);
                let m = match gate.kind() {
                    qcir::gate::GateKind::Dense1 { m } => m,
                    _ => unreachable!(),
                };
                apply_1q(&mut a, q, &m);
                assert_close(&a, &b);
            }
        }
    }

    #[test]
    fn diagonal_and_permutation_kernels_match_reference() {
        for q in 0..4 {
            let mut a = test_amps(4);
            let b = reference(&a, &Gate::P(0.9).matrix(), &[q]);
            apply_diag1(&mut a, q, C64::ONE, C64::cis(0.9));
            assert_close(&a, &b);

            let mut a = test_amps(4);
            let b = reference(&a, &Gate::X.matrix(), &[q]);
            apply_x(&mut a, q);
            assert_close(&a, &b);

            let mut a = test_amps(4);
            let b = reference(&a, &Gate::Y.matrix(), &[q]);
            apply_y(&mut a, q);
            assert_close(&a, &b);
        }
    }

    #[test]
    fn two_qubit_kernels_match_reference_on_all_operand_orders() {
        for c in 0..4 {
            for t in 0..4 {
                if c == t {
                    continue;
                }
                let mut a = test_amps(4);
                let b = reference(&a, &Gate::CX.matrix(), &[c, t]);
                apply_cx(&mut a, c, t);
                assert_close(&a, &b);

                let mut a = test_amps(4);
                let b = reference(&a, &Gate::SWAP.matrix(), &[c, t]);
                apply_swap(&mut a, c, t);
                assert_close(&a, &b);

                let mut a = test_amps(4);
                let b = reference(&a, &Gate::CRZ(0.7).matrix(), &[c, t]);
                apply_controlled_diag1(&mut a, c, t, C64::cis(-0.35), C64::cis(0.35));
                assert_close(&a, &b);

                let mut a = test_amps(4);
                let b = reference(&a, &Gate::CH.matrix(), &[c, t]);
                let m = match Gate::CH.kind() {
                    qcir::gate::GateKind::ControlledDense1 { m } => m,
                    _ => unreachable!(),
                };
                apply_controlled_1q(&mut a, c, t, &m);
                assert_close(&a, &b);
            }
        }
    }

    #[test]
    fn three_qubit_kernels_match_reference_on_all_operand_orders() {
        for q0 in 0..4 {
            for q1 in 0..4 {
                for q2 in 0..4 {
                    if q0 == q1 || q0 == q2 || q1 == q2 {
                        continue;
                    }
                    let mut a = test_amps(4);
                    let b = reference(&a, &Gate::CCX.matrix(), &[q0, q1, q2]);
                    apply_ccx(&mut a, q0, q1, q2);
                    assert_close(&a, &b);

                    let mut a = test_amps(4);
                    let b = reference(&a, &Gate::CSWAP.matrix(), &[q0, q1, q2]);
                    apply_cswap(&mut a, q0, q1, q2);
                    assert_close(&a, &b);
                }
            }
        }
    }

    #[test]
    fn dense_kernel_matches_reference_for_k_up_to_3() {
        let cases: Vec<(Matrix, Vec<usize>)> = vec![
            (Gate::H.matrix(), vec![2]),
            (Gate::CX.matrix(), vec![3, 1]),
            (Gate::SWAP.matrix(), vec![0, 3]),
            (Gate::CCX.matrix(), vec![3, 0, 2]),
            (Gate::CSWAP.matrix(), vec![1, 3, 0]),
            (Gate::H.matrix().kron(&Gate::SX.matrix()), vec![2, 0]),
        ];
        let mut scratch = DenseScratch::default();
        for (matrix, qubits) in cases {
            let mut a = test_amps(4);
            let b = reference(&a, &matrix, &qubits);
            apply_dense(&mut a, &matrix, &qubits, &mut scratch);
            assert_close(&a, &b);
        }
    }
}
