//! Specialized gate-application kernels for the dense state vector.
//!
//! Every kernel here enumerates only the `2^(n-k)` base indices it actually
//! touches — via [`insert_zero_bit`] stride expansion — instead of filtering
//! all `2^n` basis states, and updates amplitudes in place:
//!
//! * **Diagonal tier** ([`apply_diag1`], [`apply_controlled_diag1`]) — pure
//!   phase multiplies, no gather/scatter at all; phase-only gates (Z, S, T,
//!   P, CZ, CP) touch just the set-bit half/quarter of the vector.
//! * **Permutation tier** ([`apply_x`], [`apply_cx`], [`apply_swap`],
//!   [`apply_ccx`], [`apply_cswap`]) — index swaps, no arithmetic.
//! * **Butterfly tier** ([`apply_1q`], [`apply_controlled_1q`],
//!   [`apply_y`]) — closed-form 2x2 updates over index pairs, no matrix
//!   lookup in the inner loop.
//! * **General tier** ([`apply_dense`]) — arbitrary `2^k x 2^k` unitaries
//!   with the scatter-index table hoisted out of the row loop and all
//!   scratch storage reused across calls through [`DenseScratch`].
//!
//! [`crate::state::StateVector::apply_gate`] picks the tier from
//! [`qcir::gate::Gate::kind`]; these functions are also public so other hot
//! paths (noise injection, observables) can call them directly.
//!
//! All kernels require the bit positions to be in range for the amplitude
//! slice (whose length must be a power of two) and mutually distinct; the
//! state-vector wrapper validates once per gate application.

use qcir::math::{Matrix, C64};
use qugen_telemetry::metrics::{self, Counter};
use std::sync::OnceLock;

/// Interned dispatch-tier counters for the runtime-dispatched kernels:
/// how many calls of each vectorizable kernel took the AVX2+FMA path vs
/// the portable scalar fallback. One relaxed `fetch_add` per kernel
/// call — amortized over the `2^n`-amplitude sweep each call performs.
struct TierCounters {
    butterfly1_avx2: &'static Counter,
    butterfly1_scalar: &'static Counter,
    dense2_avx2: &'static Counter,
    dense2_scalar: &'static Counter,
    diag1_avx2: &'static Counter,
    diag1_scalar: &'static Counter,
    diag2_avx2: &'static Counter,
    diag2_scalar: &'static Counter,
    dense3_avx2: &'static Counter,
    dense3_scalar: &'static Counter,
}

fn tiers() -> &'static TierCounters {
    static COUNTERS: OnceLock<TierCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| TierCounters {
        butterfly1_avx2: metrics::counter("kernels.butterfly1_avx2"),
        butterfly1_scalar: metrics::counter("kernels.butterfly1_scalar"),
        dense2_avx2: metrics::counter("kernels.dense2_avx2"),
        dense2_scalar: metrics::counter("kernels.dense2_scalar"),
        diag1_avx2: metrics::counter("kernels.diag1_avx2"),
        diag1_scalar: metrics::counter("kernels.diag1_scalar"),
        diag2_avx2: metrics::counter("kernels.diag2_avx2"),
        diag2_scalar: metrics::counter("kernels.diag2_scalar"),
        dense3_avx2: metrics::counter("kernels.dense3_avx2"),
        dense3_scalar: metrics::counter("kernels.dense3_scalar"),
    })
}

/// Whether the runtime-dispatched AVX2+FMA tier is active on this host.
/// Other modules (the MPS theta contraction) consult this once per
/// contraction to pick their own tier counter; always `false` off x86-64.
pub fn avx2_fma_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd::avx2_fma_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Returns `x` with a zero bit inserted at position `bit`: bits below `bit`
/// stay, bits at or above shift up by one. Iterating `x` over `0..2^(n-1)`
/// therefore enumerates exactly the indices with bit `bit` clear, in order.
#[inline(always)]
pub fn insert_zero_bit(x: usize, bit: usize) -> usize {
    let low = x & ((1 << bit) - 1);
    low | ((x ^ low) << 1)
}

/// Applies a dense single-qubit unitary `m = [m00, m01, m10, m11]`
/// (row-major) to `qubit` via a butterfly update over index pairs.
///
/// The inner loop walks the low/high halves in explicit 2-wide lane chunks
/// (two independent butterflies per iteration, straight-line) so the
/// compiler can keep both lanes in registers and autovectorize the
/// multiply-adds; `qubit == 0`, whose pairs are adjacent, gets its own
/// 4-amplitude chunking. On x86-64 with runtime-detected AVX2+FMA the
/// update takes the packed-lane path instead (same dispatch shape as
/// [`apply_dense2`]); the scalar loops below remain the portable fallback.
pub fn apply_1q(amps: &mut [C64], qubit: usize, m: &[C64; 4]) {
    let step = 1usize << qubit;
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma_available() {
        tiers().butterfly1_avx2.inc();
        // SAFETY: gated on runtime AVX2+FMA detection.
        unsafe {
            if step >= 2 {
                simd::butterfly1_lanes_avx(amps, step, m);
            } else {
                simd::butterfly1_tiles_avx(amps, m);
            }
        }
        return;
    }
    tiers().butterfly1_scalar.inc();
    if step == 1 {
        let mut quads = amps.chunks_exact_mut(4);
        for quad in &mut quads {
            let (x0, y0, x1, y1) = (quad[0], quad[1], quad[2], quad[3]);
            quad[0] = m[0] * x0 + m[1] * y0;
            quad[1] = m[2] * x0 + m[3] * y0;
            quad[2] = m[0] * x1 + m[1] * y1;
            quad[3] = m[2] * x1 + m[3] * y1;
        }
        for pair in quads.into_remainder().chunks_exact_mut(2) {
            let (x, y) = (pair[0], pair[1]);
            pair[0] = m[0] * x + m[1] * y;
            pair[1] = m[2] * x + m[3] * y;
        }
        return;
    }
    // step >= 2, so both halves split evenly into 2-wide lane chunks.
    for block in amps.chunks_exact_mut(step << 1) {
        let (lo, hi) = block.split_at_mut(step);
        for (l, h) in lo.chunks_exact_mut(2).zip(hi.chunks_exact_mut(2)) {
            let (x0, y0, x1, y1) = (l[0], h[0], l[1], h[1]);
            l[0] = m[0] * x0 + m[1] * y0;
            h[0] = m[2] * x0 + m[3] * y0;
            l[1] = m[0] * x1 + m[1] * y1;
            h[1] = m[2] * x1 + m[3] * y1;
        }
    }
}

/// Multiplies the `|0>` / `|1>` components of `qubit` by `d0` / `d1`.
///
/// When `d0 == 1` (Z, S, T, P, ...) only the set-bit half of the vector is
/// touched. On x86-64 with runtime-detected AVX2+FMA each half scan runs
/// as packed two-amplitude complex products (same dispatch shape as
/// [`apply_1q`]); the scalar loops below — explicit 2-wide lane chunks for
/// autovectorization — remain the portable fallback.
pub fn apply_diag1(amps: &mut [C64], qubit: usize, d0: C64, d1: C64) {
    let step = 1usize << qubit;
    let phase_only = d0 == C64::ONE;
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma_available() {
        tiers().diag1_avx2.inc();
        // SAFETY: gated on runtime AVX2+FMA detection.
        unsafe {
            if step >= 2 {
                simd::diag1_lanes_avx(amps, step, d0, d1, phase_only);
            } else {
                simd::scale_pairs_avx(amps, d0, d1);
            }
        }
        return;
    }
    tiers().diag1_scalar.inc();
    if step == 1 {
        let mut quads = amps.chunks_exact_mut(4);
        for quad in &mut quads {
            if !phase_only {
                quad[0] *= d0;
                quad[2] *= d0;
            }
            quad[1] *= d1;
            quad[3] *= d1;
        }
        for pair in quads.into_remainder().chunks_exact_mut(2) {
            if !phase_only {
                pair[0] *= d0;
            }
            pair[1] *= d1;
        }
        return;
    }
    for block in amps.chunks_exact_mut(step << 1) {
        let (lo, hi) = block.split_at_mut(step);
        if !phase_only {
            for l in lo.chunks_exact_mut(2) {
                l[0] *= d0;
                l[1] *= d0;
            }
        }
        for h in hi.chunks_exact_mut(2) {
            h[0] *= d1;
            h[1] *= d1;
        }
    }
}

/// Applies a dense two-qubit unitary (`m` row-major, 4x4; `hi` is the most
/// significant matrix bit) over the four-amplitude groups it couples.
///
/// This is the fused-superblock kernel the compiled-plan layer emits: one
/// pass over the state applies what was a run of adjacent 1q/2q gates.
/// Instead of scatter/gathering via per-group index arithmetic, the loop
/// nest walks the two qubit strides so the innermost loop advances four
/// *contiguous* lanes in lockstep — streaming access the compiler
/// autovectorizes. When the smaller qubit is bit 0 (contiguous runs of
/// length one) the groups are adjacent 2x2 tiles and get their own
/// flat-chunk loop.
///
/// # Panics
///
/// Debug-asserts that `hi != lo`; the plan compiler guarantees it.
pub fn apply_dense2(amps: &mut [C64], hi: usize, lo: usize, m: &[C64; 16]) {
    debug_assert_ne!(hi, lo);
    // Work on a matrix oriented so the *higher bit position* is the matrix
    // MSB; when the caller's matrix MSB sits on the lower position, permute
    // the matrix entries once (exact bit-role transposition) instead of
    // paying index arithmetic per group.
    let mut oriented = *m;
    if hi < lo {
        for r in 0..4 {
            for c in 0..4 {
                oriented[(swap_bits2(r) << 2) | swap_bits2(c)] = m[(r << 2) | c];
            }
        }
    }
    let m = &oriented;
    let (qlow, qhigh) = sort2(hi, lo);
    let s = 1usize << qlow;
    let t = 1usize << qhigh;
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma_available() {
        tiers().dense2_avx2.inc();
        // SAFETY: gated on runtime AVX2+FMA detection.
        unsafe {
            if s >= 2 {
                simd::dense2_lanes_avx(amps, s, t, m);
            } else {
                simd::dense2_tiles_avx(amps, t, m);
            }
        }
        return;
    }
    tiers().dense2_scalar.inc();
    if s == 1 {
        // Adjacent pairs: each 2t-block splits into a low/high half whose
        // elements interleave as (x0, x1) / (x2, x3) tiles.
        for block in amps.chunks_exact_mut(t << 1) {
            let (lo_half, hi_half) = block.split_at_mut(t);
            for (l, h) in lo_half.chunks_exact_mut(2).zip(hi_half.chunks_exact_mut(2)) {
                let (x0, x1, x2, x3) = (l[0], l[1], h[0], h[1]);
                l[0] = m[0] * x0 + m[1] * x1 + m[2] * x2 + m[3] * x3;
                l[1] = m[4] * x0 + m[5] * x1 + m[6] * x2 + m[7] * x3;
                h[0] = m[8] * x0 + m[9] * x1 + m[10] * x2 + m[11] * x3;
                h[1] = m[12] * x0 + m[13] * x1 + m[14] * x2 + m[15] * x3;
            }
        }
        return;
    }
    for block in amps.chunks_exact_mut(t << 1) {
        let (lo_half, hi_half) = block.split_at_mut(t);
        for (lo_sub, hi_sub) in lo_half
            .chunks_exact_mut(s << 1)
            .zip(hi_half.chunks_exact_mut(s << 1))
        {
            let (a0, a1) = lo_sub.split_at_mut(s);
            let (a2, a3) = hi_sub.split_at_mut(s);
            // s >= 2 is even, so the four lanes advance in 2-wide chunks:
            // two independent 4-point updates per iteration for ILP.
            for j in (0..s).step_by(2) {
                let (x0, x1, x2, x3) = (a0[j], a1[j], a2[j], a3[j]);
                let (y0, y1, y2, y3) = (a0[j + 1], a1[j + 1], a2[j + 1], a3[j + 1]);
                a0[j] = m[0] * x0 + m[1] * x1 + m[2] * x2 + m[3] * x3;
                a1[j] = m[4] * x0 + m[5] * x1 + m[6] * x2 + m[7] * x3;
                a2[j] = m[8] * x0 + m[9] * x1 + m[10] * x2 + m[11] * x3;
                a3[j] = m[12] * x0 + m[13] * x1 + m[14] * x2 + m[15] * x3;
                a0[j + 1] = m[0] * y0 + m[1] * y1 + m[2] * y2 + m[3] * y3;
                a1[j + 1] = m[4] * y0 + m[5] * y1 + m[6] * y2 + m[7] * y3;
                a2[j + 1] = m[8] * y0 + m[9] * y1 + m[10] * y2 + m[11] * y3;
                a3[j + 1] = m[12] * y0 + m[13] * y1 + m[14] * y2 + m[15] * y3;
            }
        }
    }
}

/// Multiplies the four `(hi, lo)` bit-combination quarters of the vector by
/// `d[0..4]` (`d[(hi_bit << 1) | lo_bit]`), skipping quarters whose factor
/// is exactly 1 — so a fused CZ/CP-style block still touches only the
/// quarter it phases.
///
/// Like [`apply_dense2`], the sweep walks the two qubit strides so every
/// quarter is visited as contiguous runs (streaming access instead of the
/// gathered four-index hops the naive formulation does), and on x86-64
/// with runtime-detected AVX2+FMA each run is scaled as packed
/// two-amplitude complex products.
pub fn apply_diag2(amps: &mut [C64], hi: usize, lo: usize, d: &[C64; 4]) {
    debug_assert_ne!(hi, lo);
    // Orient the diagonal so index bit 1 is the *higher* qubit position
    // (exact entry permutation, mirroring apply_dense2).
    let mut oriented = *d;
    if hi < lo {
        for (k, &dk) in d.iter().enumerate() {
            oriented[swap_bits2(k)] = dk;
        }
    }
    let d = &oriented;
    let (qlow, qhigh) = sort2(hi, lo);
    let s = 1usize << qlow;
    let t = 1usize << qhigh;
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma_available() {
        tiers().diag2_avx2.inc();
        // SAFETY: gated on runtime AVX2+FMA detection.
        unsafe {
            if s >= 2 {
                simd::diag2_lanes_avx(amps, s, t, d);
            } else {
                simd::diag2_tiles_avx(amps, t, d);
            }
        }
        return;
    }
    tiers().diag2_scalar.inc();
    let skip = [
        d[0] == C64::ONE,
        d[1] == C64::ONE,
        d[2] == C64::ONE,
        d[3] == C64::ONE,
    ];
    if s == 1 {
        // Adjacent pairs: quarters interleave as (even, odd) lanes of each
        // half, so the factor pair is applied per 2-amplitude tile.
        for block in amps.chunks_exact_mut(t << 1) {
            let (lo_half, hi_half) = block.split_at_mut(t);
            for pair in lo_half.chunks_exact_mut(2) {
                if !skip[0] {
                    pair[0] *= d[0];
                }
                if !skip[1] {
                    pair[1] *= d[1];
                }
            }
            for pair in hi_half.chunks_exact_mut(2) {
                if !skip[2] {
                    pair[0] *= d[2];
                }
                if !skip[3] {
                    pair[1] *= d[3];
                }
            }
        }
        return;
    }
    for block in amps.chunks_exact_mut(t << 1) {
        let (lo_half, hi_half) = block.split_at_mut(t);
        for sub in lo_half.chunks_exact_mut(s << 1) {
            let (a0, a1) = sub.split_at_mut(s);
            if !skip[0] {
                for a in a0 {
                    *a *= d[0];
                }
            }
            if !skip[1] {
                for a in a1 {
                    *a *= d[1];
                }
            }
        }
        for sub in hi_half.chunks_exact_mut(s << 1) {
            let (a2, a3) = sub.split_at_mut(s);
            if !skip[2] {
                for a in a2 {
                    *a *= d[2];
                }
            }
            if !skip[3] {
                for a in a3 {
                    *a *= d[3];
                }
            }
        }
    }
}

/// Pauli-X on `qubit`: swaps paired amplitudes (a pure index permutation).
pub fn apply_x(amps: &mut [C64], qubit: usize) {
    let step = 1usize << qubit;
    for block in amps.chunks_exact_mut(step << 1) {
        let (lo, hi) = block.split_at_mut(step);
        lo.swap_with_slice(hi);
    }
}

/// Pauli-Y on `qubit`: the X swap fused with the `±i` phases, written as
/// component shuffles so the inner loop has no complex multiplies.
pub fn apply_y(amps: &mut [C64], qubit: usize) {
    let step = 1usize << qubit;
    for block in amps.chunks_exact_mut(step << 1) {
        let (lo, hi) = block.split_at_mut(step);
        for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
            let x = *a0;
            let y = *a1;
            *a0 = C64::new(y.im, -y.re); // -i * y
            *a1 = C64::new(-x.im, x.re); // i * x
        }
    }
}

/// Applies a dense single-qubit unitary to `target` on the subspace where
/// `control` is set.
pub fn apply_controlled_1q(amps: &mut [C64], control: usize, target: usize, m: &[C64; 4]) {
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    let (lo, hi) = sort2(control, target);
    for c in 0..amps.len() >> 2 {
        let base = insert_zero_bit(insert_zero_bit(c, lo), hi);
        let i0 = base | cbit;
        let i1 = i0 | tbit;
        let x = amps[i0];
        let y = amps[i1];
        amps[i0] = m[0] * x + m[1] * y;
        amps[i1] = m[2] * x + m[3] * y;
    }
}

/// Multiplies the target's `|0>` / `|1>` components by `d0` / `d1` where
/// `control` is set. When `d0 == 1` (CZ, CP) only indices with both bits set
/// are touched — a quarter of the vector.
pub fn apply_controlled_diag1(amps: &mut [C64], control: usize, target: usize, d0: C64, d1: C64) {
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    let (lo, hi) = sort2(control, target);
    let phase_only = d0 == C64::ONE;
    for c in 0..amps.len() >> 2 {
        let base = insert_zero_bit(insert_zero_bit(c, lo), hi);
        if !phase_only {
            amps[base | cbit] *= d0;
        }
        amps[base | cbit | tbit] *= d1;
    }
}

/// CX: swaps the target pair where `control` is set (index permutation).
///
/// The walk is structured as a stride nest so every exchanged run is
/// contiguous (`swap_with_slice` over whole subruns, which lowers to block
/// memory moves) instead of the per-index gathered `swap` the naive
/// formulation does. A permutation needs no arithmetic, so there is no
/// vectorized tier — the block moves already saturate memory bandwidth.
pub fn apply_cx(amps: &mut [C64], control: usize, target: usize) {
    let (qlow, qhigh) = sort2(control, target);
    let s = 1usize << qlow;
    let t = 1usize << qhigh;
    if control > target {
        // Control is the outer stride: the whole upper half of each block
        // swaps its target subrun pairs.
        for block in amps.chunks_exact_mut(t << 1) {
            let (_, hi_half) = block.split_at_mut(t);
            for sub in hi_half.chunks_exact_mut(s << 1) {
                let (t0, t1) = sub.split_at_mut(s);
                t0.swap_with_slice(t1);
            }
        }
    } else {
        // Control is the inner stride: control-set subruns of the two
        // target halves exchange.
        for block in amps.chunks_exact_mut(t << 1) {
            let (lo_half, hi_half) = block.split_at_mut(t);
            for (ls, hs) in lo_half
                .chunks_exact_mut(s << 1)
                .zip(hi_half.chunks_exact_mut(s << 1))
            {
                let (_, l1) = ls.split_at_mut(s);
                let (_, h1) = hs.split_at_mut(s);
                l1.swap_with_slice(h1);
            }
        }
    }
}

/// SWAP: exchanges the amplitudes of `a` and `b` (index permutation over the
/// `01`/`10` pairs). Streaming stride nest like [`apply_cx`]: the `01`
/// subruns of the upper half exchange with the `10` subruns of the lower
/// half as contiguous block moves.
pub fn apply_swap(amps: &mut [C64], a: usize, b: usize) {
    let (qlow, qhigh) = sort2(a, b);
    let s = 1usize << qlow;
    let t = 1usize << qhigh;
    for block in amps.chunks_exact_mut(t << 1) {
        let (lo_half, hi_half) = block.split_at_mut(t);
        for (ls, hs) in lo_half
            .chunks_exact_mut(s << 1)
            .zip(hi_half.chunks_exact_mut(s << 1))
        {
            let (_, l1) = ls.split_at_mut(s);
            let (h0, _) = hs.split_at_mut(s);
            l1.swap_with_slice(h0);
        }
    }
}

/// Toffoli: flips `target` where both controls are set.
pub fn apply_ccx(amps: &mut [C64], control1: usize, control2: usize, target: usize) {
    let c1bit = 1usize << control1;
    let c2bit = 1usize << control2;
    let tbit = 1usize << target;
    let [b0, b1, b2] = sort3(control1, control2, target);
    for c in 0..amps.len() >> 3 {
        let base = insert_zero_bit(insert_zero_bit(insert_zero_bit(c, b0), b1), b2);
        amps.swap(base | c1bit | c2bit, base | c1bit | c2bit | tbit);
    }
}

/// Fredkin: exchanges `a` and `b` where `control` is set.
pub fn apply_cswap(amps: &mut [C64], control: usize, a: usize, b: usize) {
    let cbit = 1usize << control;
    let abit = 1usize << a;
    let bbit = 1usize << b;
    let [b0, b1, b2] = sort3(control, a, b);
    for c in 0..amps.len() >> 3 {
        let base = insert_zero_bit(insert_zero_bit(insert_zero_bit(c, b0), b1), b2);
        amps.swap(base | cbit | abit, base | cbit | bbit);
    }
}

/// Applies a dense three-qubit unitary (`m` row-major, 8x8) over the
/// eight-amplitude groups it couples. `q2 > q1 > q0` is required and `q2`
/// is the most significant matrix bit — the plan layer always builds its
/// 8x8 superblocks already oriented to the sorted qubit positions.
///
/// This is the `Dense3` superblock kernel the compiled-plan fuser emits:
/// one pass over the state applies what was a run of gates across a qubit
/// triple, halving sweep count (and therefore memory traffic, the binding
/// cost now that the arithmetic is vectorized) relative to two `Dense2`
/// sweeps. On x86-64 with runtime-detected AVX2+FMA the update runs as
/// packed two-amplitude complex products (lane variant for `q0 >= 1`,
/// adjacent-pair tile variant for `q0 == 0`); the scalar gather/scatter
/// loop with zero-entry skipping is the portable fallback.
///
/// # Panics
///
/// Debug-asserts `q2 > q1 > q0`; the plan compiler guarantees it.
pub fn apply_dense3(amps: &mut [C64], q2: usize, q1: usize, q0: usize, m: &[C64; 64]) {
    debug_assert!(q2 > q1 && q1 > q0);
    let s0 = 1usize << q0;
    let s1 = 1usize << q1;
    let s2 = 1usize << q2;
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma_available() {
        tiers().dense3_avx2.inc();
        // SAFETY: gated on runtime AVX2+FMA detection.
        unsafe {
            if s0 >= 2 {
                simd::dense3_lanes_avx(amps, q0, q1, q2, m);
            } else {
                simd::dense3_tiles_avx(amps, q1, q2, m);
            }
        }
        return;
    }
    tiers().dense3_scalar.inc();
    let offs = [0, s0, s1, s1 | s0, s2, s2 | s0, s2 | s1, s2 | s1 | s0];
    for c in 0..amps.len() >> 3 {
        let base = insert_zero_bit(insert_zero_bit(insert_zero_bit(c, q0), q1), q2);
        let mut x = [C64::ZERO; 8];
        for (xi, &off) in x.iter_mut().zip(&offs) {
            *xi = amps[base | off];
        }
        for (row, &off) in offs.iter().enumerate() {
            let mrow = &m[row * 8..row * 8 + 8];
            let mut acc = C64::ZERO;
            // Fused 8x8 blocks are often structurally sparse (permutation
            // or controlled factors), so skipping exact zeros pays.
            for (mk, &xk) in mrow.iter().zip(&x) {
                if *mk != C64::ZERO {
                    acc += *mk * xk;
                }
            }
            amps[base | off] = acc;
        }
    }
}

/// `dst += scale * src` over complex slices — the axpy inner step of the
/// MPS two-site theta contraction, runtime-dispatched to AVX2+FMA like the
/// dense kernels (no per-call tier counter: callers run many axpys per
/// logical contraction and count once via [`avx2_fma_active`]).
pub fn axpy(dst: &mut [C64], src: &[C64], scale: C64) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_fma_available() {
        // SAFETY: gated on runtime AVX2+FMA detection.
        unsafe { simd::axpy_avx(dst, src, scale) };
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += scale * *s;
    }
}

/// Reusable scratch storage for [`apply_dense`], held by the state vector so
/// repeated gate applications allocate nothing after the buffers first grow
/// to the needed size.
#[derive(Debug, Clone, Default)]
pub struct DenseScratch {
    /// Gathered amplitude block (`2^k` entries).
    amps: Vec<C64>,
    /// Per-row scatter offsets (`2^k` entries), hoisted out of the base loop.
    offsets: Vec<usize>,
    /// Target bit positions in ascending order, for stride expansion.
    bits: Vec<usize>,
}

/// Applies an arbitrary `2^k x 2^k` unitary to `qubits` (big-endian:
/// `qubits[0]` is the most significant matrix bit).
///
/// The scatter-index table is computed once per call — not once per base
/// index as the naive formulation does — and base indices are enumerated
/// directly by stride expansion, so the cost is `O(2^n * 2^k)` complex
/// multiply-adds with no per-row bit fiddling.
///
/// # Panics
///
/// Panics when the matrix dimension is not `2^k` for `k = qubits.len()`.
pub fn apply_dense(
    amps: &mut [C64],
    matrix: &Matrix,
    qubits: &[usize],
    scratch: &mut DenseScratch,
) {
    let k = qubits.len();
    let dim = 1usize << k;
    assert_eq!(matrix.dim(), dim, "matrix dimension mismatch");

    scratch.bits.clear();
    scratch.bits.extend_from_slice(qubits);
    scratch.bits.sort_unstable();

    scratch.offsets.clear();
    for row in 0..dim {
        let mut off = 0usize;
        for (j, &q) in qubits.iter().enumerate() {
            if (row >> (k - 1 - j)) & 1 == 1 {
                off |= 1 << q;
            }
        }
        scratch.offsets.push(off);
    }

    scratch.amps.clear();
    scratch.amps.resize(dim, C64::ZERO);

    for c in 0..amps.len() >> k {
        let mut base = c;
        for &b in &scratch.bits {
            base = insert_zero_bit(base, b);
        }
        for (gathered, &off) in scratch.amps.iter_mut().zip(&scratch.offsets) {
            *gathered = amps[base | off];
        }
        for (row, &off) in scratch.offsets.iter().enumerate() {
            let mut acc = C64::ZERO;
            for (col, &amp) in scratch.amps.iter().enumerate() {
                let m = matrix.get(row, col);
                if m != C64::ZERO {
                    acc += m * amp;
                }
            }
            amps[base | off] = acc;
        }
    }
}

#[inline(always)]
fn sort2(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Swaps the two bits of a 2-bit index (the bit-role transposition used to
/// reorient 4x4 matrices).
#[inline(always)]
fn swap_bits2(i: usize) -> usize {
    ((i & 1) << 1) | (i >> 1)
}

#[inline(always)]
fn sort3(a: usize, b: usize, c: usize) -> [usize; 3] {
    let mut v = [a, b, c];
    v.sort_unstable();
    v
}

/// Runtime-dispatched AVX2+FMA lane kernels.
///
/// The scalar dense updates are arithmetic-bound (two complex
/// multiply-adds per amplitude for the 1q butterfly, four for fused 4x4
/// blocks) — so these paths pack two adjacent complex amplitudes per
/// 256-bit vector and issue each complex product as one `vfmaddsub` plus
/// one multiply, cutting the instruction count per amplitude by roughly
/// 2x and pushing the sweep toward memory bandwidth. Both the shared 1q
/// butterfly ([`super::apply_1q`]) and the two-qubit superblock kernel
/// ([`super::apply_dense2`]) dispatch here.
///
/// Baseline builds (or non-x86 targets) keep the portable scalar loops;
/// detection is cached so the dispatch check is a relaxed load.
#[cfg(target_arch = "x86_64")]
mod simd {
    use qcir::math::C64;
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Cached `avx2 && fma` CPUID probe.
    pub fn avx2_fma_available() -> bool {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// One complex product of the two packed amplitudes in `y` by the
    /// broadcast scalar `(mr, mi)`, sign-folded into interleaved
    /// `[re, im, re, im]` form: even lanes get `yr*mr - yi*mi`, odd lanes
    /// `yi*mr + yr*mi`. `ys` must be `y` with each (re, im) pair swapped.
    #[inline(always)]
    unsafe fn cmul2(y: __m256d, ys: __m256d, mr: __m256d, mi: __m256d) -> __m256d {
        _mm256_fmaddsub_pd(y, mr, _mm256_mul_pd(ys, mi))
    }

    /// The `s >= 2` stride walk of [`super::apply_dense2`] with each
    /// 4-point update running over two adjacent complex amplitudes per
    /// vector. `amps` layout guarantees (`C64` is `repr(C)`) make a lane a
    /// plain `[re0, im0, re1, im1]` load.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dense2_lanes_avx(amps: &mut [C64], s: usize, t: usize, m: &[C64; 16]) {
        debug_assert!(s >= 2);
        // Broadcast every matrix entry's real and imaginary part once.
        let mut mr = [_mm256_setzero_pd(); 16];
        let mut mi = [_mm256_setzero_pd(); 16];
        for k in 0..16 {
            mr[k] = _mm256_set1_pd(m[k].re);
            mi[k] = _mm256_set1_pd(m[k].im);
        }
        for block in amps.chunks_exact_mut(t << 1) {
            let (lo_half, hi_half) = block.split_at_mut(t);
            for (lo_sub, hi_sub) in lo_half
                .chunks_exact_mut(s << 1)
                .zip(hi_half.chunks_exact_mut(s << 1))
            {
                let (a0, a1) = lo_sub.split_at_mut(s);
                let (a2, a3) = hi_sub.split_at_mut(s);
                for j in (0..s).step_by(2) {
                    let p0 = a0.as_mut_ptr().add(j).cast::<f64>();
                    let p1 = a1.as_mut_ptr().add(j).cast::<f64>();
                    let p2 = a2.as_mut_ptr().add(j).cast::<f64>();
                    let p3 = a3.as_mut_ptr().add(j).cast::<f64>();
                    let y0 = _mm256_loadu_pd(p0);
                    let y1 = _mm256_loadu_pd(p1);
                    let y2 = _mm256_loadu_pd(p2);
                    let y3 = _mm256_loadu_pd(p3);
                    // Pair-swapped copies feed the imaginary half of each
                    // complex product; computed once, shared by all rows.
                    let ys0 = _mm256_permute_pd(y0, 0b0101);
                    let ys1 = _mm256_permute_pd(y1, 0b0101);
                    let ys2 = _mm256_permute_pd(y2, 0b0101);
                    let ys3 = _mm256_permute_pd(y3, 0b0101);
                    let r0 = _mm256_add_pd(
                        _mm256_add_pd(cmul2(y0, ys0, mr[0], mi[0]), cmul2(y1, ys1, mr[1], mi[1])),
                        _mm256_add_pd(cmul2(y2, ys2, mr[2], mi[2]), cmul2(y3, ys3, mr[3], mi[3])),
                    );
                    let r1 = _mm256_add_pd(
                        _mm256_add_pd(cmul2(y0, ys0, mr[4], mi[4]), cmul2(y1, ys1, mr[5], mi[5])),
                        _mm256_add_pd(cmul2(y2, ys2, mr[6], mi[6]), cmul2(y3, ys3, mr[7], mi[7])),
                    );
                    let r2 = _mm256_add_pd(
                        _mm256_add_pd(cmul2(y0, ys0, mr[8], mi[8]), cmul2(y1, ys1, mr[9], mi[9])),
                        _mm256_add_pd(
                            cmul2(y2, ys2, mr[10], mi[10]),
                            cmul2(y3, ys3, mr[11], mi[11]),
                        ),
                    );
                    let r3 = _mm256_add_pd(
                        _mm256_add_pd(
                            cmul2(y0, ys0, mr[12], mi[12]),
                            cmul2(y1, ys1, mr[13], mi[13]),
                        ),
                        _mm256_add_pd(
                            cmul2(y2, ys2, mr[14], mi[14]),
                            cmul2(y3, ys3, mr[15], mi[15]),
                        ),
                    );
                    _mm256_storeu_pd(p0, r0);
                    _mm256_storeu_pd(p1, r1);
                    _mm256_storeu_pd(p2, r2);
                    _mm256_storeu_pd(p3, r3);
                }
            }
        }
    }

    /// The `step >= 2` half walk of [`super::apply_1q`]: each iteration
    /// loads two adjacent complex amplitudes from the low half and their
    /// partners from the high half, and issues the 2x2 butterfly as four
    /// packed complex products.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn butterfly1_lanes_avx(amps: &mut [C64], step: usize, m: &[C64; 4]) {
        debug_assert!(step >= 2);
        let mut mr = [_mm256_setzero_pd(); 4];
        let mut mi = [_mm256_setzero_pd(); 4];
        for k in 0..4 {
            mr[k] = _mm256_set1_pd(m[k].re);
            mi[k] = _mm256_set1_pd(m[k].im);
        }
        for block in amps.chunks_exact_mut(step << 1) {
            let (lo, hi) = block.split_at_mut(step);
            for j in (0..step).step_by(2) {
                let pl = lo.as_mut_ptr().add(j).cast::<f64>();
                let ph = hi.as_mut_ptr().add(j).cast::<f64>();
                let x = _mm256_loadu_pd(pl);
                let y = _mm256_loadu_pd(ph);
                let xs = _mm256_permute_pd(x, 0b0101);
                let ys = _mm256_permute_pd(y, 0b0101);
                let rl = _mm256_add_pd(cmul2(x, xs, mr[0], mi[0]), cmul2(y, ys, mr[1], mi[1]));
                let rh = _mm256_add_pd(cmul2(x, xs, mr[2], mi[2]), cmul2(y, ys, mr[3], mi[3]));
                _mm256_storeu_pd(pl, rl);
                _mm256_storeu_pd(ph, rh);
            }
        }
    }

    /// The `step == 1` tile walk of [`super::apply_1q`]: pairs are
    /// adjacent, so the 2x2 matrix is repacked into column vectors
    /// (`[m[0], m[2]]`, `[m[1], m[3]]`) and each input amplitude is
    /// broadcast against them — one 256-bit vector per butterfly.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn butterfly1_tiles_avx(amps: &mut [C64], m: &[C64; 4]) {
        let col0 = _mm256_setr_pd(m[0].re, m[0].im, m[2].re, m[2].im);
        let col1 = _mm256_setr_pd(m[1].re, m[1].im, m[3].re, m[3].im);
        let col0_s = _mm256_permute_pd(col0, 0b0101);
        let col1_s = _mm256_permute_pd(col1, 0b0101);
        for pair in amps.chunks_exact_mut(2) {
            let p = pair.as_mut_ptr().cast::<f64>();
            let (x, y) = (pair[0], pair[1]);
            let r = _mm256_add_pd(
                cmul2(col0, col0_s, _mm256_set1_pd(x.re), _mm256_set1_pd(x.im)),
                cmul2(col1, col1_s, _mm256_set1_pd(y.re), _mm256_set1_pd(y.im)),
            );
            _mm256_storeu_pd(p, r);
        }
    }

    /// The `s == 1` tile walk of [`super::apply_dense2`]: the four points of
    /// each update sit as adjacent pairs `(x0, x1)` / `(x2, x3)`, so the
    /// matrix is repacked into column vectors (`[m[l], m[4+l]]` for the low
    /// output pair, `[m[8+l], m[12+l]]` for the high one) and each input
    /// amplitude is broadcast against them.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dense2_tiles_avx(amps: &mut [C64], t: usize, m: &[C64; 16]) {
        // col_lo[l] packs rows 0 and 1 of column l; col_hi[l] rows 2 and 3.
        // The pair-swapped copies feed the imaginary half of each product.
        let mut col_lo = [_mm256_setzero_pd(); 4];
        let mut col_hi = [_mm256_setzero_pd(); 4];
        for l in 0..4 {
            col_lo[l] = _mm256_setr_pd(m[l].re, m[l].im, m[4 + l].re, m[4 + l].im);
            col_hi[l] = _mm256_setr_pd(m[8 + l].re, m[8 + l].im, m[12 + l].re, m[12 + l].im);
        }
        let col_lo_s = col_lo.map(|v| _mm256_permute_pd(v, 0b0101));
        let col_hi_s = col_hi.map(|v| _mm256_permute_pd(v, 0b0101));
        for block in amps.chunks_exact_mut(t << 1) {
            let (lo_half, hi_half) = block.split_at_mut(t);
            for (l_pair, h_pair) in lo_half.chunks_exact_mut(2).zip(hi_half.chunks_exact_mut(2)) {
                let pl = l_pair.as_mut_ptr().cast::<f64>();
                let ph = h_pair.as_mut_ptr().cast::<f64>();
                let x = [l_pair[0], l_pair[1], h_pair[0], h_pair[1]];
                let mut r_lo = _mm256_setzero_pd();
                let mut r_hi = _mm256_setzero_pd();
                for l in 0..4 {
                    let xr = _mm256_set1_pd(x[l].re);
                    let xi = _mm256_set1_pd(x[l].im);
                    r_lo = _mm256_add_pd(r_lo, cmul2(col_lo[l], col_lo_s[l], xr, xi));
                    r_hi = _mm256_add_pd(r_hi, cmul2(col_hi[l], col_hi_s[l], xr, xi));
                }
                _mm256_storeu_pd(pl, r_lo);
                _mm256_storeu_pd(ph, r_hi);
            }
        }
    }

    /// Scales a contiguous even-length run by one broadcast complex factor,
    /// two amplitudes per product. Shared by the diagonal lane kernels.
    #[inline(always)]
    unsafe fn scale_run_avx(run: &mut [C64], dr: __m256d, di: __m256d) {
        for pair in run.chunks_exact_mut(2) {
            let p = pair.as_mut_ptr().cast::<f64>();
            let y = _mm256_loadu_pd(p);
            let ys = _mm256_permute_pd(y, 0b0101);
            _mm256_storeu_pd(p, cmul2(y, ys, dr, di));
        }
    }

    /// Scales adjacent `(even, odd)` amplitude pairs by the packed factor
    /// pair in `(mr, mi)`, blending the original bits back over any lane
    /// pair whose factor is exactly 1 so skipped amplitudes stay untouched
    /// bit for bit (matching the scalar tier's skip semantics).
    #[inline(always)]
    unsafe fn scale_pairs_masked(
        half: &mut [C64],
        mr: __m256d,
        mi: __m256d,
        skip_a: bool,
        skip_b: bool,
    ) {
        for pair in half.chunks_exact_mut(2) {
            let p = pair.as_mut_ptr().cast::<f64>();
            let y = _mm256_loadu_pd(p);
            let ys = _mm256_permute_pd(y, 0b0101);
            let mut r = cmul2(y, ys, mr, mi);
            if skip_a {
                r = _mm256_blend_pd(r, y, 0b0011);
            } else if skip_b {
                r = _mm256_blend_pd(r, y, 0b1100);
            }
            _mm256_storeu_pd(p, r);
        }
    }

    /// The `step == 1` walk of [`super::apply_diag1`]: pairs are adjacent,
    /// so both diagonal factors ride in one packed vector.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn scale_pairs_avx(amps: &mut [C64], da: C64, db: C64) {
        let skip_a = da == C64::ONE;
        let skip_b = db == C64::ONE;
        if skip_a && skip_b {
            return;
        }
        let mr = _mm256_setr_pd(da.re, da.re, db.re, db.re);
        let mi = _mm256_setr_pd(da.im, da.im, db.im, db.im);
        scale_pairs_masked(amps, mr, mi, skip_a, skip_b);
    }

    /// The `step >= 2` half walk of [`super::apply_diag1`]: each half is a
    /// contiguous run scaled by one broadcast factor.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn diag1_lanes_avx(
        amps: &mut [C64],
        step: usize,
        d0: C64,
        d1: C64,
        phase_only: bool,
    ) {
        debug_assert!(step >= 2);
        let d0r = _mm256_set1_pd(d0.re);
        let d0i = _mm256_set1_pd(d0.im);
        let d1r = _mm256_set1_pd(d1.re);
        let d1i = _mm256_set1_pd(d1.im);
        for block in amps.chunks_exact_mut(step << 1) {
            let (lo, hi) = block.split_at_mut(step);
            if !phase_only {
                scale_run_avx(lo, d0r, d0i);
            }
            scale_run_avx(hi, d1r, d1i);
        }
    }

    /// The `s >= 2` stride walk of [`super::apply_diag2`]: every quarter is
    /// visited as contiguous subruns, each scaled by its broadcast factor;
    /// exact-1 quarters are skipped whole.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn diag2_lanes_avx(amps: &mut [C64], s: usize, t: usize, d: &[C64; 4]) {
        debug_assert!(s >= 2);
        let mut dr = [_mm256_setzero_pd(); 4];
        let mut di = [_mm256_setzero_pd(); 4];
        let mut skip = [false; 4];
        for k in 0..4 {
            dr[k] = _mm256_set1_pd(d[k].re);
            di[k] = _mm256_set1_pd(d[k].im);
            skip[k] = d[k] == C64::ONE;
        }
        for block in amps.chunks_exact_mut(t << 1) {
            let (lo_half, hi_half) = block.split_at_mut(t);
            for sub in lo_half.chunks_exact_mut(s << 1) {
                let (a0, a1) = sub.split_at_mut(s);
                if !skip[0] {
                    scale_run_avx(a0, dr[0], di[0]);
                }
                if !skip[1] {
                    scale_run_avx(a1, dr[1], di[1]);
                }
            }
            for sub in hi_half.chunks_exact_mut(s << 1) {
                let (a2, a3) = sub.split_at_mut(s);
                if !skip[2] {
                    scale_run_avx(a2, dr[2], di[2]);
                }
                if !skip[3] {
                    scale_run_avx(a3, dr[3], di[3]);
                }
            }
        }
    }

    /// The `s == 1` tile walk of [`super::apply_diag2`]: the low-qubit pair
    /// interleaves as the `(even, odd)` lanes of each half, so each half is
    /// scaled by its packed factor pair.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn diag2_tiles_avx(amps: &mut [C64], t: usize, d: &[C64; 4]) {
        let mr_lo = _mm256_setr_pd(d[0].re, d[0].re, d[1].re, d[1].re);
        let mi_lo = _mm256_setr_pd(d[0].im, d[0].im, d[1].im, d[1].im);
        let mr_hi = _mm256_setr_pd(d[2].re, d[2].re, d[3].re, d[3].re);
        let mi_hi = _mm256_setr_pd(d[2].im, d[2].im, d[3].im, d[3].im);
        let skip = [
            d[0] == C64::ONE,
            d[1] == C64::ONE,
            d[2] == C64::ONE,
            d[3] == C64::ONE,
        ];
        for block in amps.chunks_exact_mut(t << 1) {
            let (lo_half, hi_half) = block.split_at_mut(t);
            if !(skip[0] && skip[1]) {
                scale_pairs_masked(lo_half, mr_lo, mi_lo, skip[0], skip[1]);
            }
            if !(skip[2] && skip[3]) {
                scale_pairs_masked(hi_half, mr_hi, mi_hi, skip[2], skip[3]);
            }
        }
    }

    /// The `q0 >= 1` walk of [`super::apply_dense3`]: bases advance two at
    /// a time (the low stride keeps adjacent bases adjacent), so each
    /// 8-point update runs over two complex amplitudes per vector.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dense3_lanes_avx(
        amps: &mut [C64],
        q0: usize,
        q1: usize,
        q2: usize,
        m: &[C64; 64],
    ) {
        debug_assert!(q0 >= 1);
        let s0 = 1usize << q0;
        let s1 = 1usize << q1;
        let s2 = 1usize << q2;
        let mut mr = [_mm256_setzero_pd(); 64];
        let mut mi = [_mm256_setzero_pd(); 64];
        for k in 0..64 {
            mr[k] = _mm256_set1_pd(m[k].re);
            mi[k] = _mm256_set1_pd(m[k].im);
        }
        let offs = [0, s0, s1, s1 | s0, s2, s2 | s0, s2 | s1, s2 | s1 | s0];
        let ptr = amps.as_mut_ptr();
        // q0 >= 1 forces at least a 4-qubit state, so the base count is
        // even and every even base's successor is also a valid base.
        for c in (0..amps.len() >> 3).step_by(2) {
            let base = super::insert_zero_bit(
                super::insert_zero_bit(super::insert_zero_bit(c, q0), q1),
                q2,
            );
            let mut p = [ptr.cast::<f64>(); 8];
            let mut y = [_mm256_setzero_pd(); 8];
            let mut ys = [_mm256_setzero_pd(); 8];
            for k in 0..8 {
                p[k] = ptr.add(base | offs[k]).cast::<f64>();
                y[k] = _mm256_loadu_pd(p[k]);
                ys[k] = _mm256_permute_pd(y[k], 0b0101);
            }
            for row in 0..8 {
                let mut r = cmul2(y[0], ys[0], mr[row * 8], mi[row * 8]);
                for k in 1..8 {
                    r = _mm256_add_pd(r, cmul2(y[k], ys[k], mr[row * 8 + k], mi[row * 8 + k]));
                }
                _mm256_storeu_pd(p[row], r);
            }
        }
    }

    /// The `q0 == 0` tile walk of [`super::apply_dense3`]: the eight points
    /// of each update sit as four adjacent pairs, so the 8x8 matrix is
    /// repacked into row-pair column vectors and each input amplitude is
    /// broadcast against them (same shape as [`dense2_tiles_avx`]).
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dense3_tiles_avx(amps: &mut [C64], q1: usize, q2: usize, m: &[C64; 64]) {
        let s1 = 1usize << q1;
        let s2 = 1usize << q2;
        // col[v][k] packs rows 2v and 2v+1 of column k.
        let mut col = [[_mm256_setzero_pd(); 8]; 4];
        for v in 0..4 {
            for k in 0..8 {
                col[v][k] = _mm256_setr_pd(
                    m[2 * v * 8 + k].re,
                    m[2 * v * 8 + k].im,
                    m[(2 * v + 1) * 8 + k].re,
                    m[(2 * v + 1) * 8 + k].im,
                );
            }
        }
        let col_s = col.map(|row| row.map(|v| _mm256_permute_pd(v, 0b0101)));
        let offs = [0usize, s1, s2, s2 | s1];
        let ptr = amps.as_mut_ptr();
        for c in 0..amps.len() >> 3 {
            let base = super::insert_zero_bit(super::insert_zero_bit(c << 1, q1), q2);
            let mut x = [C64::ZERO; 8];
            for g in 0..4 {
                x[2 * g] = *ptr.add(base | offs[g]);
                x[2 * g + 1] = *ptr.add((base | offs[g]) + 1);
            }
            for v in 0..4 {
                let mut r = _mm256_setzero_pd();
                for k in 0..8 {
                    let xr = _mm256_set1_pd(x[k].re);
                    let xi = _mm256_set1_pd(x[k].im);
                    r = _mm256_add_pd(r, cmul2(col[v][k], col_s[v][k], xr, xi));
                }
                _mm256_storeu_pd(ptr.add(base | offs[v]).cast::<f64>(), r);
            }
        }
    }

    /// Packed complex axpy for [`super::axpy`]: `dst += a * src`, two
    /// amplitudes per product, scalar tail for odd lengths.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_avx(dst: &mut [C64], src: &[C64], a: C64) {
        let ar = _mm256_set1_pd(a.re);
        let ai = _mm256_set1_pd(a.im);
        let n = dst.len() & !1;
        let dp = dst.as_mut_ptr().cast::<f64>();
        let sp = src.as_ptr().cast::<f64>();
        let mut i = 0;
        while i < n {
            let y = _mm256_loadu_pd(sp.add(2 * i));
            let ys = _mm256_permute_pd(y, 0b0101);
            let d = _mm256_loadu_pd(dp.add(2 * i));
            _mm256_storeu_pd(dp.add(2 * i), _mm256_add_pd(d, cmul2(y, ys, ar, ai)));
            i += 2;
        }
        if n < dst.len() {
            dst[n] += a * src[n];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::gate::Gate;

    /// Random-ish but deterministic normalized amplitudes.
    fn test_amps(n: usize) -> Vec<C64> {
        let len = 1usize << n;
        let mut amps: Vec<C64> = (0..len)
            .map(|i| {
                let x = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                let y = ((i * 40503 + 7) % 1000) as f64 / 1000.0 - 0.5;
                C64::new(x, y)
            })
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut amps {
            *a = *a / norm;
        }
        amps
    }

    /// Oracle: run the same update through the full-scan reference path.
    fn reference(amps: &[C64], matrix: &Matrix, qubits: &[usize]) -> Vec<C64> {
        let mut sv = crate::state::StateVector::from_amplitudes(amps.to_vec());
        sv.apply_matrix_reference(matrix, qubits);
        sv.amplitudes().to_vec()
    }

    fn assert_close(a: &[C64], b: &[C64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.approx_eq(*y, 1e-12), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn insert_zero_bit_enumerates_cleared_indices() {
        // Inserting at bit 1 over 0..4 must yield exactly {0,1,4,5}.
        let got: Vec<usize> = (0..4).map(|x| insert_zero_bit(x, 1)).collect();
        assert_eq!(got, vec![0, 1, 4, 5]);
        // Bit 0: evens.
        let got: Vec<usize> = (0..4).map(|x| insert_zero_bit(x, 0)).collect();
        assert_eq!(got, vec![0, 2, 4, 6]);
    }

    #[test]
    fn butterfly_matches_reference_on_each_qubit() {
        for q in 0..4 {
            for gate in [Gate::H, Gate::SX, Gate::U(0.3, -0.8, 1.7)] {
                let mut a = test_amps(4);
                let b = reference(&a, &gate.matrix(), &[q]);
                let m = match gate.kind() {
                    qcir::gate::GateKind::Dense1 { m } => m,
                    _ => unreachable!(),
                };
                apply_1q(&mut a, q, &m);
                assert_close(&a, &b);
            }
        }
    }

    #[test]
    fn diagonal_and_permutation_kernels_match_reference() {
        for q in 0..4 {
            let mut a = test_amps(4);
            let b = reference(&a, &Gate::P(0.9).matrix(), &[q]);
            apply_diag1(&mut a, q, C64::ONE, C64::cis(0.9));
            assert_close(&a, &b);

            let mut a = test_amps(4);
            let b = reference(&a, &Gate::X.matrix(), &[q]);
            apply_x(&mut a, q);
            assert_close(&a, &b);

            let mut a = test_amps(4);
            let b = reference(&a, &Gate::Y.matrix(), &[q]);
            apply_y(&mut a, q);
            assert_close(&a, &b);
        }
    }

    #[test]
    fn two_qubit_kernels_match_reference_on_all_operand_orders() {
        for c in 0..4 {
            for t in 0..4 {
                if c == t {
                    continue;
                }
                let mut a = test_amps(4);
                let b = reference(&a, &Gate::CX.matrix(), &[c, t]);
                apply_cx(&mut a, c, t);
                assert_close(&a, &b);

                let mut a = test_amps(4);
                let b = reference(&a, &Gate::SWAP.matrix(), &[c, t]);
                apply_swap(&mut a, c, t);
                assert_close(&a, &b);

                let mut a = test_amps(4);
                let b = reference(&a, &Gate::CRZ(0.7).matrix(), &[c, t]);
                apply_controlled_diag1(&mut a, c, t, C64::cis(-0.35), C64::cis(0.35));
                assert_close(&a, &b);

                let mut a = test_amps(4);
                let b = reference(&a, &Gate::CH.matrix(), &[c, t]);
                let m = match Gate::CH.kind() {
                    qcir::gate::GateKind::ControlledDense1 { m } => m,
                    _ => unreachable!(),
                };
                apply_controlled_1q(&mut a, c, t, &m);
                assert_close(&a, &b);
            }
        }
    }

    #[test]
    fn three_qubit_kernels_match_reference_on_all_operand_orders() {
        for q0 in 0..4 {
            for q1 in 0..4 {
                for q2 in 0..4 {
                    if q0 == q1 || q0 == q2 || q1 == q2 {
                        continue;
                    }
                    let mut a = test_amps(4);
                    let b = reference(&a, &Gate::CCX.matrix(), &[q0, q1, q2]);
                    apply_ccx(&mut a, q0, q1, q2);
                    assert_close(&a, &b);

                    let mut a = test_amps(4);
                    let b = reference(&a, &Gate::CSWAP.matrix(), &[q0, q1, q2]);
                    apply_cswap(&mut a, q0, q1, q2);
                    assert_close(&a, &b);
                }
            }
        }
    }

    #[test]
    fn dense2_kernel_matches_reference_on_all_operand_orders() {
        // Full 4x4 unitaries (entangling and product-form) on every ordered
        // qubit pair, against the full-scan oracle.
        let matrices: Vec<Matrix> = vec![
            Gate::CX.matrix(),
            Gate::SWAP.matrix(),
            Gate::CRY(0.9).matrix(),
            Gate::H.matrix().kron(&Gate::U(0.3, -0.8, 1.7).matrix()),
            Gate::CX
                .matrix()
                .matmul(&Gate::SX.matrix().kron(&Gate::T.matrix())),
        ];
        for hi in 0..4 {
            for lo in 0..4 {
                if hi == lo {
                    continue;
                }
                for matrix in &matrices {
                    let mut m = [C64::ZERO; 16];
                    for r in 0..4 {
                        for c in 0..4 {
                            m[r * 4 + c] = matrix.get(r, c);
                        }
                    }
                    let mut a = test_amps(4);
                    let b = reference(&a, matrix, &[hi, lo]);
                    apply_dense2(&mut a, hi, lo, &m);
                    assert_close(&a, &b);
                }
            }
        }
    }

    #[test]
    fn diag2_kernel_matches_reference_on_all_operand_orders() {
        // A fully general two-qubit diagonal (no entry equal to 1, plus the
        // phase-only CP shape) against the oracle.
        let full = [C64::cis(0.3), C64::cis(-0.7), C64::cis(1.9), C64::cis(0.4)];
        let cp = [C64::ONE, C64::ONE, C64::ONE, C64::cis(0.8)];
        for hi in 0..4 {
            for lo in 0..4 {
                if hi == lo {
                    continue;
                }
                for d in [full, cp] {
                    let mut matrix = Matrix::zeros(4);
                    for (k, &dk) in d.iter().enumerate() {
                        matrix[(k, k)] = dk;
                    }
                    let mut a = test_amps(4);
                    let b = reference(&a, &matrix, &[hi, lo]);
                    apply_diag2(&mut a, hi, lo, &d);
                    assert_close(&a, &b);
                }
            }
        }
    }

    #[test]
    fn lane_chunked_kernels_handle_the_minimal_state() {
        // A 1-qubit state exercises the remainder path of the 2-wide lane
        // chunking in apply_1q / apply_diag1.
        let mut a = test_amps(1);
        let b = reference(&a, &Gate::H.matrix(), &[0]);
        let h = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        apply_1q(&mut a, 0, &[h, h, h, -h]);
        assert_close(&a, &b);
        let mut a = test_amps(1);
        let b = reference(&a, &Gate::RZ(0.7).matrix(), &[0]);
        apply_diag1(&mut a, 0, C64::cis(-0.35), C64::cis(0.35));
        assert_close(&a, &b);
    }

    #[test]
    fn dense3_kernel_matches_reference_on_all_sorted_triples() {
        // Structurally sparse (CCX), product-form, and fully dense 8x8
        // unitaries on every sorted qubit triple of a 5-qubit state — this
        // covers both the q0 == 0 tile path and the q0 >= 1 lane path.
        let matrices: Vec<Matrix> = vec![
            Gate::CCX.matrix(),
            Gate::H.matrix().kron(&Gate::CX.matrix()),
            Gate::CRY(0.9)
                .matrix()
                .kron(&Gate::U(0.3, -0.8, 1.7).matrix()),
            Gate::CCX
                .matrix()
                .matmul(&Gate::H.matrix().kron(&Gate::CRZ(0.4).matrix())),
        ];
        for q2 in 0..5 {
            for q1 in 0..q2 {
                for q0 in 0..q1 {
                    for matrix in &matrices {
                        let mut m = [C64::ZERO; 64];
                        for r in 0..8 {
                            for c in 0..8 {
                                m[r * 8 + c] = matrix.get(r, c);
                            }
                        }
                        let mut a = test_amps(5);
                        let b = reference(&a, matrix, &[q2, q1, q0]);
                        apply_dense3(&mut a, q2, q1, q0, &m);
                        assert_close(&a, &b);
                    }
                }
            }
        }
    }

    #[test]
    fn axpy_accumulates_like_the_scalar_formula() {
        for len in [0usize, 1, 2, 3, 8, 17] {
            let src = test_amps(5)[..len].to_vec();
            let mut dst = test_amps(5)[5..5 + len].to_vec();
            let mut want = dst.clone();
            let a = C64::new(0.37, -1.21);
            for (w, s) in want.iter_mut().zip(&src) {
                *w += a * *s;
            }
            axpy(&mut dst, &src, a);
            assert_close(&dst, &want);
        }
    }

    #[test]
    fn dense_kernel_matches_reference_for_k_up_to_3() {
        let cases: Vec<(Matrix, Vec<usize>)> = vec![
            (Gate::H.matrix(), vec![2]),
            (Gate::CX.matrix(), vec![3, 1]),
            (Gate::SWAP.matrix(), vec![0, 3]),
            (Gate::CCX.matrix(), vec![3, 0, 2]),
            (Gate::CSWAP.matrix(), vec![1, 3, 0]),
            (Gate::H.matrix().kron(&Gate::SX.matrix()), vec![2, 0]),
        ];
        let mut scratch = DenseScratch::default();
        for (matrix, qubits) in cases {
            let mut a = test_amps(4);
            let b = reference(&a, &matrix, &qubits);
            apply_dense(&mut a, &matrix, &qubits, &mut scratch);
            assert_close(&a, &b);
        }
    }
}
