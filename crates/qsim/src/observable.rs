//! Pauli-string observables and expectation values.
//!
//! The VQE workloads (and any ablation wanting an energy rather than a
//! distribution) need `<psi| P |psi>` for Pauli strings `P` and weighted
//! sums of them (Hamiltonians). Expectations are computed directly on the
//! state vector without building the operator matrix.

use crate::state::StateVector;
use qcir::math::C64;
use std::fmt;

/// A single-qubit Pauli factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauliOp {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

/// A tensor product of Pauli factors over `n` qubits.
///
/// ```
/// use qsim::observable::PauliString;
/// let zz = PauliString::parse("ZZI").expect("valid");
/// assert_eq!(zz.num_qubits(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    factors: Vec<PauliOp>,
}

impl PauliString {
    /// The identity string over `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            factors: vec![PauliOp::I; n],
        }
    }

    /// Builds from explicit factors (factor `i` acts on qubit `i`).
    pub fn new(factors: Vec<PauliOp>) -> Self {
        PauliString { factors }
    }

    /// Parses a string like `"ZZI"` — **leftmost character acts on qubit
    /// 0** (reading order, not bit order).
    ///
    /// Returns `None` on characters outside `IXYZ`.
    pub fn parse(s: &str) -> Option<Self> {
        let factors: Option<Vec<PauliOp>> = s
            .chars()
            .map(|c| match c.to_ascii_uppercase() {
                'I' => Some(PauliOp::I),
                'X' => Some(PauliOp::X),
                'Y' => Some(PauliOp::Y),
                'Z' => Some(PauliOp::Z),
                _ => None,
            })
            .collect();
        Some(PauliString { factors: factors? })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.factors.len()
    }

    /// The factor on `qubit`.
    pub fn factor(&self, qubit: usize) -> PauliOp {
        self.factors.get(qubit).copied().unwrap_or(PauliOp::I)
    }

    /// Weight: number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.factors.iter().filter(|&&f| f != PauliOp::I).count()
    }

    /// `<psi| P |psi>` (always real for Hermitian P; the real part is
    /// returned and the imaginary part asserted small in debug builds).
    ///
    /// # Panics
    ///
    /// Panics when the string is wider than the state.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        assert!(
            self.num_qubits() <= state.num_qubits(),
            "observable wider than state"
        );
        let amps = state.amplitudes();
        // <psi|P|psi> = sum_i conj(psi_(i^x_mask)) * phase(i) * psi_i. The
        // per-index phase collapses to bit arithmetic (kernel style): each Y
        // contributes i*(-1)^bit and each Z contributes (-1)^bit, so
        // phase(i) = i^{#Y} * (-1)^{popcount(i & (y_mask | z_mask))}.
        let mut x_mask = 0usize;
        let mut sign_mask = 0usize;
        let mut y_count = 0u32;
        for (q, &f) in self.factors.iter().enumerate() {
            match f {
                PauliOp::I => {}
                PauliOp::X => x_mask |= 1 << q,
                PauliOp::Y => {
                    x_mask |= 1 << q;
                    sign_mask |= 1 << q;
                    y_count += 1;
                }
                PauliOp::Z => sign_mask |= 1 << q,
            }
        }
        let y_phase = match y_count % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        };
        let mut acc = C64::ZERO;
        for (i, amp) in amps.iter().enumerate() {
            if *amp == C64::ZERO {
                continue;
            }
            let term = amps[i ^ x_mask].conj() * *amp;
            if (i & sign_mask).count_ones() & 1 == 1 {
                acc -= term;
            } else {
                acc += term;
            }
        }
        acc *= y_phase;
        debug_assert!(acc.im.abs() < 1e-9, "expectation must be real: {acc}");
        acc.re
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for factor in &self.factors {
            let c = match factor {
                PauliOp::I => 'I',
                PauliOp::X => 'X',
                PauliOp::Y => 'Y',
                PauliOp::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A weighted sum of Pauli strings (a Hamiltonian).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hamiltonian {
    terms: Vec<(f64, PauliString)>,
}

impl Hamiltonian {
    /// An empty Hamiltonian.
    pub fn new() -> Self {
        Hamiltonian { terms: Vec::new() }
    }

    /// Adds a weighted term (builder style).
    pub fn term(mut self, coefficient: f64, pauli: PauliString) -> Self {
        self.terms.push((coefficient, pauli));
        self
    }

    /// The transverse-field Ising chain
    /// `H = -J sum Z_i Z_{i+1} - h sum X_i` on `n` qubits.
    pub fn tfim_chain(n: usize, j: f64, h: f64) -> Self {
        let mut ham = Hamiltonian::new();
        for q in 0..n.saturating_sub(1) {
            let mut f = vec![PauliOp::I; n];
            f[q] = PauliOp::Z;
            f[q + 1] = PauliOp::Z;
            ham = ham.term(-j, PauliString::new(f));
        }
        for q in 0..n {
            let mut f = vec![PauliOp::I; n];
            f[q] = PauliOp::X;
            ham = ham.term(-h, PauliString::new(f));
        }
        ham
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(coefficient, string)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &PauliString)> {
        self.terms.iter().map(|(c, p)| (*c, p))
    }

    /// `<psi| H |psi>`.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        self.terms
            .iter()
            .map(|(c, p)| c * p.expectation(state))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::gate::Gate;

    #[test]
    fn parse_and_display_round_trip() {
        let p = PauliString::parse("XIZY").expect("valid");
        assert_eq!(p.to_string(), "XIZY");
        assert_eq!(p.weight(), 3);
        assert!(PauliString::parse("XQ").is_none());
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let z = PauliString::parse("Z").expect("valid");
        let zero = StateVector::zero(1);
        assert!((z.expectation(&zero) - 1.0).abs() < 1e-12);
        let one = StateVector::basis(1, 1);
        assert!((z.expectation(&one) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut plus = StateVector::zero(1);
        plus.apply_gate(Gate::H, &[0]);
        let x = PauliString::parse("X").expect("valid");
        assert!((x.expectation(&plus) - 1.0).abs() < 1e-12);
        let z = PauliString::parse("Z").expect("valid");
        assert!(z.expectation(&plus).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_on_y_eigenstate() {
        // |+i> = (|0> + i|1>)/sqrt(2) = S H |0>.
        let mut psi = StateVector::zero(1);
        psi.apply_gate(Gate::H, &[0]);
        psi.apply_gate(Gate::S, &[0]);
        let y = PauliString::parse("Y").expect("valid");
        assert!((y.expectation(&psi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_on_bell_state_is_one() {
        let mut bell = StateVector::zero(2);
        bell.apply_gate(Gate::H, &[0]);
        bell.apply_gate(Gate::CX, &[0, 1]);
        let zz = PauliString::parse("ZZ").expect("valid");
        assert!((zz.expectation(&bell) - 1.0).abs() < 1e-12);
        let xx = PauliString::parse("XX").expect("valid");
        assert!((xx.expectation(&bell) - 1.0).abs() < 1e-12);
        let zi = PauliString::parse("ZI").expect("valid");
        assert!(zi.expectation(&bell).abs() < 1e-12);
    }

    #[test]
    fn identity_expectation_is_one() {
        let mut psi = StateVector::zero(3);
        psi.apply_gate(Gate::H, &[0]);
        psi.apply_gate(Gate::T, &[1]);
        let id = PauliString::identity(3);
        assert!((id.expectation(&psi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tfim_hamiltonian_ground_state_energies() {
        // At h = 0 the ground states are the aligned ferromagnets with
        // E = -J (n-1).
        let ham = Hamiltonian::tfim_chain(4, 1.0, 0.0);
        assert_eq!(ham.num_terms(), 7);
        let zero = StateVector::zero(4);
        assert!((ham.expectation(&zero) + 3.0).abs() < 1e-12);
        // At J = 0, |+...+> is the ground state with E = -h n.
        let ham_x = Hamiltonian::tfim_chain(3, 0.0, 1.0);
        let mut plus = StateVector::zero(3);
        for q in 0..3 {
            plus.apply_gate(Gate::H, &[q]);
        }
        assert!((ham_x.expectation(&plus) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_bounded_by_operator_norm() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut psi = StateVector::zero(3);
            for _ in 0..8 {
                let q = rng.gen_range(0..3);
                match rng.gen_range(0..3) {
                    0 => psi.apply_gate(Gate::H, &[q]),
                    1 => psi.apply_gate(Gate::T, &[q]),
                    _ => {
                        let p = (q + 1) % 3;
                        psi.apply_gate(Gate::CX, &[q, p]);
                    }
                }
            }
            for s in ["XYZ", "ZZI", "IYX"] {
                let p = PauliString::parse(s).expect("valid");
                let e = p.expectation(&psi);
                assert!(e.abs() <= 1.0 + 1e-9, "{s}: {e}");
            }
        }
    }
}
