//! Compiled circuit plans: lower a [`Circuit`] once, execute it many times.
//!
//! PR 2's kernel layer dispatches gate-by-gate off [`Gate::kind`] at apply
//! time — re-deriving trig-heavy matrix entries and kernel selection on
//! every shot, every trajectory, and every repeat of the grader's
//! candidate/reference runs. This module adds the missing compile step:
//!
//! * [`CircuitPlan::compile`] lowers a circuit into a flat
//!   `Vec<`[`PlannedOp`]`>` where every op carries its **precomputed**
//!   2×2/4×4 matrix entries (or a diagonal/permutation tag), so execution
//!   is a data-driven walk with no classification and no trigonometry.
//! * A **fusion pass** folds runs of single-qubit gates on the same qubit
//!   into one 2×2 block, folds neighboring 1q/2q gates into 4×4
//!   superblocks executed by the one-pass [`crate::kernels::apply_dense2`]
//!   kernel, and — when the cost model approves — merges an overlapping
//!   pair of two-qubit blocks into an 8×8 [`PlannedOp::Dense3`] triple
//!   ([`crate::kernels::apply_dense3`]): one sweep over the state where
//!   the unfused circuit paid several.
//! * [`PlanCache`] memoizes plans in an LRU keyed by [`fingerprint`]
//!   (a 128-bit content hash of the circuit), so the executor's repeated
//!   runs of identical circuits — the grader's candidate/reference pairs,
//!   `try_run_batch` suites, REPL loops — stop re-analyzing them. All
//!   [`crate::exec::Executor`]s share one process-wide cache by default
//!   ([`shared_cache`]).
//!
//! # Fusion legality
//!
//! The pass only ever reorders operations with **disjoint qubit support**
//! (which commute exactly) and composes matrices of operations on the
//! *same* support (matrix multiplication is exactly their sequential
//! action). Concretely, a pending block on qubit(s) `S` stays open —
//! accumulating later gates on `S` — until an operation whose support
//! intersects `S` but is not absorbable arrives; then the block is emitted
//! *before* that operation. Measurements, resets and classically
//! conditioned gates are fusion barriers **on their own qubits only**:
//! blocks on disjoint qubits legally commute past them. Fused blocks are
//! never reclassified by approximate comparison — structural tags
//! (diagonal / permutation / controlled) are only recovered through
//! *exact* entry comparisons, so a block that is "almost" diagonal runs as
//! a dense superblock rather than risking drift.
//!
//! # Cost model
//!
//! Densifying is not always a win: a long diagonal run executes as cheap
//! phase sweeps, and replacing two permutation sweeps with one dense 8×8
//! trades a little traffic for a lot of arithmetic. Before *changing an
//! op's tier* the fuser therefore consults a small calibration table (the
//! `COST_*` constants behind the fuser's decisions, derived from the
//! kernel bench rows): pending 1q blocks are absorbed into a 2q
//! superblock only when the merged sweep is cheaper than the parts, and a
//! `Dense3` triple forms only when one 8×8 sweep undercuts the cheapest
//! two-sweep split it replaces. Same-support composition is always free
//! and never declined. Each rejected densification bumps the
//! `plan.fusion_declined` counter, surfaced per plan through
//! [`CircuitPlan::fusion_declined`] and per cache through
//! [`PlanCacheStats::fusion_declined`].
//!
//! Plans encode **noiseless** semantics: Pauli noise channels attach
//! per-gate and per-barrier, which fusion would silently reassociate, so
//! the executor drives noisy dense runs through [`crate::replay`] instead:
//! per-gate kernels precompiled once and replayed in segments between
//! noise insertion points, bit-identical to classified per-gate dispatch.
//! The [`PlanCache`] memoizes those too ([`PlanCache::get_or_compile_noisy`]).
//!
//! # Cache keying and invalidation
//!
//! Plans are keyed by a 128-bit FNV-1a hash over the circuit's full
//! content: register sizes and every op's tag, gate name, exact parameter
//! bits (`f64::to_bits`), and operand indices. Editing a circuit therefore
//! *is* invalidation — the edited circuit hashes to a new key and compiles
//! fresh, while the old entry ages out of the LRU ([`PLAN_CACHE_CAPACITY`]
//! entries).

use crate::kernels;
use crate::noise::NoiseModel;
use crate::replay::{noise_signature, NoisyPlan};
use crate::state::StateVector;
use crate::word::OutcomeWord;
use qcir::circuit::{Circuit, Op};
use qcir::gate::{Gate, GateKind};
use qcir::math::C64;
use qugen_telemetry::metrics::Counter;
use qugen_telemetry::{metrics, trace};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Interned registry handles for the plan layer: cache traffic and the
/// fusion ratio (`plan.fused_unitaries / plan.source_gates`, fewer is
/// better) accumulate process-wide.
struct PlanMetrics {
    cache_hits: &'static Counter,
    cache_misses: &'static Counter,
    cache_evictions: &'static Counter,
    compiles: &'static Counter,
    source_gates: &'static Counter,
    fused_unitaries: &'static Counter,
    fusion_declined: &'static Counter,
}

fn plan_metrics() -> &'static PlanMetrics {
    static METRICS: OnceLock<PlanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PlanMetrics {
        cache_hits: metrics::counter("plan.cache_hits"),
        cache_misses: metrics::counter("plan.cache_misses"),
        cache_evictions: metrics::counter("plan.cache_evictions"),
        compiles: metrics::counter("plan.compiles"),
        source_gates: metrics::counter("plan.source_gates"),
        fused_unitaries: metrics::counter("plan.fused_unitaries"),
        fusion_declined: metrics::counter("plan.fusion_declined"),
    })
}

/// Default capacity of the process-wide [`shared_cache`] (and of private
/// executor caches unless [`crate::exec::ExecutorConfig`] overrides it):
/// enough for a grading suite's working set of reference + candidate
/// circuits. Override at runtime with the `QUGEN_PLAN_CACHE` environment
/// variable.
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// Why a `QUGEN_PLAN_CACHE` value failed to parse as a cache capacity
/// (what [`try_capacity_from_env`] reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanCacheParseError {
    /// The value was not an unsigned integer.
    NotAnInteger {
        /// The offending (trimmed) input.
        value: String,
    },
    /// The value parsed to zero; a cache that holds nothing cannot serve.
    ZeroCapacity,
}

impl std::fmt::Display for PlanCacheParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanCacheParseError::NotAnInteger { value } => {
                write!(
                    f,
                    "invalid plan-cache capacity `{value}` (expected a positive integer)"
                )
            }
            PlanCacheParseError::ZeroCapacity => {
                f.write_str("plan-cache capacity must be at least 1")
            }
        }
    }
}

impl std::error::Error for PlanCacheParseError {}

/// Parses a plan-cache capacity (the `QUGEN_PLAN_CACHE` grammar): a
/// positive integer. Surrounding whitespace is ignored — env values often
/// pick up stray spaces or a trailing newline from shell interpolation.
pub fn parse_capacity(s: &str) -> Result<usize, PlanCacheParseError> {
    let trimmed = s.trim();
    let cap: usize = trimmed
        .parse()
        .map_err(|_| PlanCacheParseError::NotAnInteger {
            value: trimmed.to_string(),
        })?;
    if cap == 0 {
        return Err(PlanCacheParseError::ZeroCapacity);
    }
    Ok(cap)
}

/// The plan-cache capacity the `QUGEN_PLAN_CACHE` environment variable
/// requests, or [`PLAN_CACHE_CAPACITY`] when unset.
///
/// Returns the typed [`PlanCacheParseError`] on a malformed value; callers
/// that would rather fail a CI job than fall back can `expect` it.
pub fn try_capacity_from_env() -> Result<usize, PlanCacheParseError> {
    match std::env::var("QUGEN_PLAN_CACHE") {
        Ok(v) => parse_capacity(&v),
        Err(_) => Ok(PLAN_CACHE_CAPACITY),
    }
}

/// [`try_capacity_from_env`] with a non-aborting fallback: a malformed
/// `QUGEN_PLAN_CACHE` logs a warning to stderr and resolves to
/// [`PLAN_CACHE_CAPACITY`], so a typo in the environment cannot abort a
/// long batch run half-way through.
pub fn capacity_from_env() -> usize {
    try_capacity_from_env().unwrap_or_else(|e| {
        eprintln!("warning: QUGEN_PLAN_CACHE: {e}; keeping {PLAN_CACHE_CAPACITY}");
        PLAN_CACHE_CAPACITY
    })
}

/// One lowered operation: kernel selection and matrix entries resolved at
/// compile time, so execution never consults [`Gate::kind`].
///
/// Two-qubit matrix conventions: `hi` is the **most significant** bit of
/// the 4×4 row/column index and diagonal entries are indexed
/// `(hi_bit << 1) | lo_bit`, matching [`crate::kernels::apply_dense2`] /
/// [`crate::kernels::apply_diag2`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedOp {
    /// `diag(d[0], d[1])` on one qubit.
    Diag1 {
        /// Target qubit.
        qubit: usize,
        /// Diagonal entries for the `|0>` / `|1>` components.
        d: [C64; 2],
    },
    /// Pauli-X (index permutation) on one qubit.
    FlipX {
        /// Target qubit.
        qubit: usize,
    },
    /// A dense 2×2 block (row-major), possibly the fusion of many gates.
    Dense1 {
        /// Target qubit.
        qubit: usize,
        /// Row-major matrix entries.
        m: [C64; 4],
    },
    /// A two-qubit diagonal; entries exactly 1 are skipped at apply time.
    Diag2 {
        /// Most significant matrix bit.
        hi: usize,
        /// Least significant matrix bit.
        lo: usize,
        /// Diagonal entries indexed `(hi_bit << 1) | lo_bit`.
        d: [C64; 4],
    },
    /// CX: flips `target` where `control` is set.
    CFlipX {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// A dense 2×2 on `target` applied where `control` is set.
    CDense1 {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Row-major 2×2 entries of the controlled block.
        m: [C64; 4],
    },
    /// Exchanges the amplitudes of `a` and `b`.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// A dense 4×4 superblock — the fusion workhorse.
    Dense2 {
        /// Most significant matrix bit.
        hi: usize,
        /// Least significant matrix bit.
        lo: usize,
        /// Row-major 4×4 entries (boxed to keep the op slim).
        m: Box<[C64; 16]>,
    },
    /// A dense 8×8 superblock over a qubit triple — formed only when the
    /// cost model says one 8×8 sweep beats the sweeps it would replace
    /// (see the module docs).
    Dense3 {
        /// Most significant matrix bit (`q2 > q1 > q0`).
        q2: usize,
        /// Middle matrix bit.
        q1: usize,
        /// Least significant matrix bit.
        q0: usize,
        /// Row-major 8×8 entries (boxed to keep the op slim).
        m: Box<[C64; 64]>,
    },
    /// Toffoli (fused only into a pending triple on exactly its operands;
    /// otherwise a flush barrier, emitted as this cheap permutation).
    Ccx {
        /// First control.
        c0: usize,
        /// Second control.
        c1: usize,
        /// Target qubit.
        target: usize,
    },
    /// Fredkin (never fused).
    CSwap {
        /// Control qubit.
        control: usize,
        /// First exchanged qubit.
        a: usize,
        /// Second exchanged qubit.
        b: usize,
    },
    /// Totality fallback for [`GateKind::General`]: a precomputed dense
    /// matrix applied through the general scatter/gather kernel.
    DenseK {
        /// Gate operands (big-endian: first is the matrix MSB).
        qubits: Vec<usize>,
        /// The gate's dense unitary.
        matrix: qcir::math::Matrix,
    },
    /// Computational-basis measurement into a classical bit.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        clbit: usize,
    },
    /// Reset a qubit to `|0>`.
    Reset {
        /// Reset qubit.
        qubit: usize,
    },
    /// A classically conditioned op: applied iff `clbit` last read `value`.
    /// The inner op is precompiled but never fused (its application is only
    /// known per trajectory).
    Cond {
        /// The precompiled conditional operation.
        op: Box<PlannedOp>,
        /// Classical bit the condition reads.
        clbit: usize,
        /// Value the bit must hold for the op to apply.
        value: bool,
    },
}

/// An executable lowering of one circuit: flat op list, precomputed
/// matrices, fused superblocks. Immutable once compiled — cache and share
/// freely across threads.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitPlan {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<PlannedOp>,
    measure_map: Vec<(usize, usize)>,
    source_gate_ops: usize,
    fusion_declined: usize,
    fingerprint: u128,
}

impl CircuitPlan {
    /// Lowers and fuses `circuit` (see the module docs for the fusion
    /// rules). Deterministic: equal circuits compile to equal plans.
    pub fn compile(circuit: &Circuit) -> CircuitPlan {
        let mut fuser = Fuser::new(circuit.num_qubits());
        let mut measure_map = Vec::new();
        let mut source_gate_ops = 0usize;
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => {
                    source_gate_ops += 1;
                    fuser.push_gate(*gate, qubits);
                }
                Op::Measure { qubit, clbit } => {
                    fuser.flush_qubit(*qubit);
                    measure_map.push((*qubit, *clbit));
                    fuser.emitted.push(PlannedOp::Measure {
                        qubit: *qubit,
                        clbit: *clbit,
                    });
                }
                Op::Reset { qubit } => {
                    fuser.flush_qubit(*qubit);
                    fuser.emitted.push(PlannedOp::Reset { qubit: *qubit });
                }
                Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                } => {
                    source_gate_ops += 1;
                    for &q in qubits {
                        fuser.flush_qubit(q);
                    }
                    if let Some(inner) = lower_gate_solo(*gate, qubits) {
                        fuser.emitted.push(PlannedOp::Cond {
                            op: Box::new(inner),
                            clbit: *clbit,
                            value: *value,
                        });
                    }
                }
                // Barriers are no-ops under the plan's noiseless semantics
                // (idle noise attaches to them only on the unfused path).
                Op::Barrier { .. } => {}
            }
        }
        fuser.flush_all();
        let fusion_declined = fuser.declined;
        let plan = CircuitPlan {
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            ops: fuser.emitted,
            measure_map,
            source_gate_ops,
            fusion_declined,
            fingerprint: fingerprint(circuit),
        };
        let fused = plan.fused_unitaries();
        let m = plan_metrics();
        m.compiles.inc();
        m.source_gates.add(source_gate_ops as u64);
        m.fused_unitaries.add(fused as u64);
        m.fusion_declined.add(fusion_declined as u64);
        trace::event(
            "plan",
            "compile",
            &[
                ("qubits", plan.num_qubits as i128),
                ("source_gates", source_gate_ops as i128),
                ("fused_unitaries", fused as i128),
                ("fusion_declined", fusion_declined as i128),
            ],
        );
        plan
    }

    /// Number of qubits the plan addresses.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Width of the classical register.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The lowered op list, in execution order.
    pub fn ops(&self) -> &[PlannedOp] {
        &self.ops
    }

    /// `(qubit, clbit)` pairs of every measurement, in program order (the
    /// sampling fast path's measurement map).
    pub fn measure_map(&self) -> &[(usize, usize)] {
        &self.measure_map
    }

    /// Gate ops in the source circuit (conditional gates included) — the
    /// denominator of the fusion ratio.
    pub fn source_gate_ops(&self) -> usize {
        self.source_gate_ops
    }

    /// Unitary ops that survived fusion (the numerator: fewer is better).
    pub fn fused_unitaries(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                !matches!(
                    op,
                    PlannedOp::Measure { .. } | PlannedOp::Reset { .. } | PlannedOp::Cond { .. }
                )
            })
            .count()
    }

    /// Densifications the cost model declined during compilation: fusion
    /// opportunities whose parts were cheaper left as parts (see the
    /// module docs on the cost model).
    pub fn fusion_declined(&self) -> usize {
        self.fusion_declined
    }

    /// The 128-bit content hash of the source circuit (the cache key).
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// Applies every unitary op to `sv`, skipping measurements — the
    /// sampling fast path's prefix evolution for measure-at-end circuits.
    ///
    /// # Panics
    ///
    /// Panics on plans containing resets or conditional gates (their
    /// semantics need a per-trajectory run; use
    /// [`CircuitPlan::run_trajectory`]).
    pub fn apply_unitary(&self, sv: &mut StateVector) {
        for op in &self.ops {
            match op {
                PlannedOp::Measure { .. } => {}
                PlannedOp::Reset { .. } | PlannedOp::Cond { .. } => {
                    panic!("apply_unitary requires a reset- and conditional-free plan")
                }
                unitary => apply_unitary_op(sv, unitary),
            }
        }
    }

    /// Runs one full (noiseless) Monte-Carlo trajectory: reinitializes the
    /// state, walks the plan, and writes the classical outcome into the
    /// caller's scratch word (cleared first). The per-shot twin of the
    /// executor's per-gate trajectory loop, minus all gate classification.
    pub fn run_trajectory(
        &self,
        sv: &mut StateVector,
        rng: &mut impl Rng,
        clbits: &mut OutcomeWord,
    ) {
        sv.reinit();
        clbits.clear();
        for op in &self.ops {
            match op {
                PlannedOp::Measure { qubit, clbit } => {
                    let outcome = sv.measure(*qubit, rng);
                    clbits.set_bit(*clbit, outcome);
                }
                PlannedOp::Reset { qubit } => sv.reset(*qubit, rng),
                PlannedOp::Cond { op, clbit, value } => {
                    if clbits.bit(*clbit) == *value {
                        apply_unitary_op(sv, op);
                    }
                }
                unitary => apply_unitary_op(sv, unitary),
            }
        }
    }
}

/// Applies one unitary planned op to the state via the kernel layer.
///
/// # Panics
///
/// Panics (in the match) when handed `Measure`/`Reset`/`Cond`; callers
/// route those through trajectory logic.
fn apply_unitary_op(sv: &mut StateVector, op: &PlannedOp) {
    match op {
        PlannedOp::DenseK { qubits, matrix } => sv.apply_matrix(matrix, qubits),
        PlannedOp::Diag1 { qubit, d } => {
            kernels::apply_diag1(sv.amps_mut(), *qubit, d[0], d[1]);
        }
        PlannedOp::FlipX { qubit } => kernels::apply_x(sv.amps_mut(), *qubit),
        PlannedOp::Dense1 { qubit, m } => kernels::apply_1q(sv.amps_mut(), *qubit, m),
        PlannedOp::Diag2 { hi, lo, d } => kernels::apply_diag2(sv.amps_mut(), *hi, *lo, d),
        PlannedOp::CFlipX { control, target } => {
            kernels::apply_cx(sv.amps_mut(), *control, *target);
        }
        PlannedOp::CDense1 { control, target, m } => {
            kernels::apply_controlled_1q(sv.amps_mut(), *control, *target, m);
        }
        PlannedOp::Swap { a, b } => kernels::apply_swap(sv.amps_mut(), *a, *b),
        PlannedOp::Dense2 { hi, lo, m } => kernels::apply_dense2(sv.amps_mut(), *hi, *lo, m),
        PlannedOp::Dense3 { q2, q1, q0, m } => {
            kernels::apply_dense3(sv.amps_mut(), *q2, *q1, *q0, m);
        }
        PlannedOp::Ccx { c0, c1, target } => {
            kernels::apply_ccx(sv.amps_mut(), *c0, *c1, *target);
        }
        PlannedOp::CSwap { control, a, b } => {
            kernels::apply_cswap(sv.amps_mut(), *control, *a, *b);
        }
        PlannedOp::Measure { .. } | PlannedOp::Reset { .. } | PlannedOp::Cond { .. } => {
            unreachable!("non-unitary op routed to apply_unitary_op")
        }
    }
}

// ---------------------------------------------------------------------------
// Fusion pass
// ---------------------------------------------------------------------------

/// A pending fusion block: gates accumulated but not yet emitted.
enum Block {
    /// A 2×2 accumulator on one qubit.
    One { qubit: usize, m: [C64; 4] },
    /// A 4×4 accumulator on an (unordered) qubit pair, oriented
    /// `hi = max, lo = min`.
    Two { hi: usize, lo: usize, m: [C64; 16] },
    /// An 8×8 accumulator on a qubit triple, oriented `q2 > q1 > q0`
    /// (`q2` is the matrix MSB). Only formed when the cost model approves.
    Three {
        q2: usize,
        q1: usize,
        q0: usize,
        m: Box<[C64; 64]>,
    },
}

impl Block {
    /// Visits every qubit the block owns (for owner-table release).
    fn for_each_qubit(&self, mut f: impl FnMut(usize)) {
        match self {
            Block::One { qubit, .. } => f(*qubit),
            Block::Two { hi, lo, .. } => {
                f(*hi);
                f(*lo);
            }
            Block::Three { q2, q1, q0, .. } => {
                f(*q2);
                f(*q1);
                f(*q0);
            }
        }
    }
}

/// The fusion pass state: per-qubit ownership of pending blocks plus the
/// emitted tail.
struct Fuser {
    emitted: Vec<PlannedOp>,
    /// `owner[q]` = arena index of the pending block holding qubit `q`.
    owner: Vec<Option<usize>>,
    /// Block arena; `None` marks flushed/absorbed slots. Indices are never
    /// reused, so ascending index is creation order (deterministic flush
    /// ordering).
    blocks: Vec<Option<Block>>,
    /// Densifications the cost model rejected (see the module docs).
    declined: usize,
}

impl Fuser {
    fn new(num_qubits: usize) -> Self {
        Fuser {
            emitted: Vec::new(),
            owner: vec![None; num_qubits],
            blocks: Vec::new(),
            declined: 0,
        }
    }

    /// Routes one gate op into the pending blocks.
    fn push_gate(&mut self, gate: Gate, qubits: &[usize]) {
        match gate.kind() {
            GateKind::Identity => {}
            GateKind::Diagonal1 { d0, d1 } => self.push_1q(qubits[0], [d0, z(), z(), d1]),
            GateKind::FlipX => self.push_1q(qubits[0], [z(), o(), o(), z()]),
            GateKind::Dense1 { m } => self.push_1q(qubits[0], m),
            GateKind::ControlledDiagonal1 { .. }
            | GateKind::ControlledFlipX
            | GateKind::ControlledDense1 { .. }
            | GateKind::Swap => {
                let g = gate4_oriented(gate, qubits[0], qubits[1]);
                self.push_2q(qubits[0], qubits[1], g);
            }
            GateKind::DoublyControlledFlipX => {
                if !self.compose_perm3(qubits, ccx8) {
                    self.flush_qubits(qubits);
                    self.emitted.push(PlannedOp::Ccx {
                        c0: qubits[0],
                        c1: qubits[1],
                        target: qubits[2],
                    });
                }
            }
            GateKind::ControlledSwap => {
                if !self.compose_perm3(qubits, cswap8) {
                    self.flush_qubits(qubits);
                    self.emitted.push(PlannedOp::CSwap {
                        control: qubits[0],
                        a: qubits[1],
                        b: qubits[2],
                    });
                }
            }
            GateKind::General => {
                self.flush_qubits(qubits);
                self.emitted.push(PlannedOp::DenseK {
                    qubits: qubits.to_vec(),
                    matrix: gate.matrix(),
                });
            }
        }
    }

    /// Accumulates a 2×2 onto `q`'s pending block (left-multiplying: later
    /// gates compose on the left).
    fn push_1q(&mut self, q: usize, g: [C64; 4]) {
        match self.owner[q] {
            Some(idx) => match self.blocks[idx].as_mut().expect("owned blocks are live") {
                Block::One { m, .. } => *m = mul2(&g, m),
                Block::Two { hi, lo, m } => {
                    let expanded = if q == *hi {
                        expand_hi(&g)
                    } else {
                        debug_assert_eq!(q, *lo);
                        expand_lo(&g)
                    };
                    *m = mul4(&expanded, m);
                }
                Block::Three { q2, q1, q0, m } => {
                    let expanded = expand2_to8(&g, pos_in3(*q2, *q1, *q0, q));
                    **m = mul8(&expanded, m);
                }
            },
            None => self.alloc(Block::One { qubit: q, m: g }, &[q]),
        }
    }

    /// Accumulates a 4×4 (already oriented `hi = max(a, b)`) onto the
    /// pending blocks. Same-support composition is free; everything that
    /// would *change a tier* — absorbing pending 1q blocks into the
    /// superblock, or merging with a neighboring 2q block into a `Dense3`
    /// triple — goes through the cost model (see the module docs), and a
    /// rejected densification counts as declined.
    fn push_2q(&mut self, a: usize, b: usize, g: [C64; 16]) {
        let (hi, lo) = (a.max(b), a.min(b));
        // Same-support block already open: one sweep strictly replaces
        // two, so composing in place needs no cost check.
        if let (Some(ia), Some(ib)) = (self.owner[a], self.owner[b]) {
            if ia == ib {
                match self.blocks[ia].as_mut().expect("owned blocks are live") {
                    Block::Two { m, .. } => *m = mul4(&g, m),
                    Block::Three { q2, q1, q0, m } => {
                        let expanded =
                            expand4_to8(&g, pos_in3(*q2, *q1, *q0, hi), pos_in3(*q2, *q1, *q0, lo));
                        **m = mul8(&expanded, m);
                    }
                    Block::One { .. } => unreachable!("One blocks hold a single qubit"),
                }
                return;
            }
        }
        // A Three sharing only part of the support cannot absorb the gate
        // (the union would exceed three qubits): flush it. Legality, not a
        // cost decision, so it is not counted declined.
        for &q in &[a, b] {
            if let Some(idx) = self.owner[q] {
                if matches!(
                    self.blocks[idx].as_ref().expect("owned blocks are live"),
                    Block::Three { .. }
                ) {
                    self.flush_block(idx);
                }
            }
        }
        // Foreign Two blocks (one operand here, one outside) are Dense3
        // candidates. Two distinct ones union to four qubits, so both
        // flush (again legality, not cost).
        let cand = match (self.foreign_two(a), self.foreign_two(b)) {
            (Some(ia), Some(ib)) => {
                self.flush_block(ia);
                self.flush_block(ib);
                None
            }
            (one, other) => one.or(other),
        };
        // Pending One blocks on the operands: fold them into `g_eff` and
        // cost the absorbed form against keeping the parts.
        let mut ones: Vec<usize> = Vec::new();
        let mut g_eff = g;
        let mut ones_cost = 0.0;
        for &q in &[a, b] {
            if let Some(idx) = self.owner[q] {
                if let Some(Block::One { m, .. }) = self.blocks[idx].as_ref() {
                    let expanded = if q == hi { expand_hi(m) } else { expand_lo(m) };
                    g_eff = mul4(&g_eff, &expanded);
                    ones_cost += sweep_cost(classify_1q(q, m).as_ref());
                    ones.push(idx);
                }
            }
        }
        let gate_cost = sweep_cost(classify_2q(hi, lo, &g).as_ref());
        let absorb_cost = if ones.is_empty() {
            gate_cost
        } else {
            sweep_cost(classify_2q(hi, lo, &g_eff).as_ref())
        };
        let split_cost = ones_cost + gate_cost;
        // The candidate Two plus this gate (with its Ones folded in) spans
        // exactly three qubits: form a Dense3 iff the single 8×8 sweep
        // beats the cheapest two-sweep split.
        if let Some(cand_idx) = cand {
            let (chi, clo, cm) = match self.blocks[cand_idx]
                .as_ref()
                .expect("owned blocks are live")
            {
                Block::Two { hi, lo, m } => (*hi, *lo, *m),
                _ => unreachable!("candidates are Two blocks"),
            };
            let cand_cost = sweep_cost(classify_2q(chi, clo, &cm).as_ref());
            if COST_DENSE3 < cand_cost + absorb_cost.min(split_cost) {
                let third = if chi == hi || chi == lo { clo } else { chi };
                let mut t = [hi, lo, third];
                t.sort_unstable();
                let (q0, q1, q2) = (t[0], t[1], t[2]);
                // The candidate precedes the gate in program order; the
                // absorbed Ones are disjoint from the candidate's support,
                // so commuting them up to the gate is exact.
                let m8 = mul8(
                    &expand4_to8(&g_eff, pos_in3(q2, q1, q0, hi), pos_in3(q2, q1, q0, lo)),
                    &expand4_to8(&cm, pos_in3(q2, q1, q0, chi), pos_in3(q2, q1, q0, clo)),
                );
                self.consume(cand_idx);
                for &idx in &ones {
                    self.consume(idx);
                }
                self.alloc(
                    Block::Three {
                        q2,
                        q1,
                        q0,
                        m: Box::new(m8),
                    },
                    &[q2, q1, q0],
                );
                return;
            }
            // The parts are cheaper: decline the triple and emit the
            // candidate as-is.
            self.declined += 1;
            self.flush_block(cand_idx);
        }
        if !ones.is_empty() && absorb_cost >= split_cost {
            // Keeping the 1q sweeps separate is at least as cheap as
            // densifying them into the superblock: decline, emit them.
            self.declined += 1;
            for &idx in &ones {
                self.flush_block(idx);
            }
            self.alloc(Block::Two { hi, lo, m: g }, &[hi, lo]);
            return;
        }
        for &idx in &ones {
            self.consume(idx);
        }
        self.alloc(Block::Two { hi, lo, m: g_eff }, &[hi, lo]);
    }

    /// The arena index of a `Two` block owning `q` (necessarily foreign
    /// once same-support composition has been ruled out).
    fn foreign_two(&self, q: usize) -> Option<usize> {
        let idx = self.owner[q]?;
        match self.blocks[idx].as_ref().expect("owned blocks are live") {
            Block::Two { .. } => Some(idx),
            _ => None,
        }
    }

    /// Composes a 3q permutation gate onto a pending `Three` holding
    /// exactly its operands (free: the sweep count is unchanged). Returns
    /// `false` when no such block is open — the caller flushes and emits
    /// the specialized permutation op as before.
    fn compose_perm3(
        &mut self,
        qubits: &[usize],
        perm: impl Fn(usize, usize, usize) -> [C64; 64],
    ) -> bool {
        let (Some(i0), Some(i1), Some(i2)) = (
            self.owner[qubits[0]],
            self.owner[qubits[1]],
            self.owner[qubits[2]],
        ) else {
            return false;
        };
        if i0 != i1 || i0 != i2 {
            return false;
        }
        let Some(Block::Three { q2, q1, q0, m }) = self.blocks[i0].as_mut() else {
            return false;
        };
        let p = perm(
            pos_in3(*q2, *q1, *q0, qubits[0]),
            pos_in3(*q2, *q1, *q0, qubits[1]),
            pos_in3(*q2, *q1, *q0, qubits[2]),
        );
        **m = mul8(&p, m);
        true
    }

    /// Removes a pending block from the arena without emitting it (its
    /// content has been folded into another block).
    fn consume(&mut self, idx: usize) {
        let block = self.blocks[idx].take().expect("consumed block is live");
        block.for_each_qubit(|q| self.owner[q] = None);
    }

    fn alloc(&mut self, block: Block, qubits: &[usize]) {
        let idx = self.blocks.len();
        self.blocks.push(Some(block));
        for &q in qubits {
            self.owner[q] = Some(idx);
        }
    }

    /// Emits the pending block holding `q`, if any.
    fn flush_qubit(&mut self, q: usize) {
        if let Some(idx) = self.owner[q] {
            self.flush_block(idx);
        }
    }

    fn flush_qubits(&mut self, qubits: &[usize]) {
        for &q in qubits {
            self.flush_qubit(q);
        }
    }

    /// Emits every pending block in creation order.
    fn flush_all(&mut self) {
        for idx in 0..self.blocks.len() {
            if self.blocks[idx].is_some() {
                self.flush_block(idx);
            }
        }
    }

    /// Classifies and emits one pending block, releasing its qubits.
    fn flush_block(&mut self, idx: usize) {
        let block = self.blocks[idx].take().expect("flushed block is live");
        block.for_each_qubit(|q| self.owner[q] = None);
        let op = match block {
            Block::One { qubit, m } => classify_1q(qubit, &m),
            Block::Two { hi, lo, m } => classify_2q(hi, lo, &m),
            Block::Three { q2, q1, q0, m } => classify_3q(q2, q1, q0, m),
        };
        if let Some(op) = op {
            self.emitted.push(op);
        }
    }
}

/// Classifies a fused 2×2 block into the cheapest exact kernel tier.
/// Returns `None` for the exact identity (fused gates that cancelled).
fn classify_1q(qubit: usize, m: &[C64; 4]) -> Option<PlannedOp> {
    if m[1] == z() && m[2] == z() {
        if m[0] == o() && m[3] == o() {
            return None;
        }
        return Some(PlannedOp::Diag1 {
            qubit,
            d: [m[0], m[3]],
        });
    }
    if m[0] == z() && m[3] == z() && m[1] == o() && m[2] == o() {
        return Some(PlannedOp::FlipX { qubit });
    }
    Some(PlannedOp::Dense1 { qubit, m: *m })
}

/// Classifies a fused 4×4 block: diagonal, controlled, swap and identity
/// structure are recovered through exact entry comparisons; anything else
/// runs as a dense superblock.
fn classify_2q(hi: usize, lo: usize, m: &[C64; 16]) -> Option<PlannedOp> {
    let off_diag_zero = (0..4).all(|r| (0..4).all(|c| r == c || m[r * 4 + c] == z()));
    if off_diag_zero {
        let d = [m[0], m[5], m[10], m[15]];
        if d.iter().all(|&x| x == o()) {
            return None;
        }
        // Product-form diagonals drop back to a cheaper 1q pass.
        if d[0] == d[1] && d[2] == d[3] {
            return Some(PlannedOp::Diag1 {
                qubit: hi,
                d: [d[0], d[2]],
            });
        }
        if d[0] == d[2] && d[1] == d[3] {
            return Some(PlannedOp::Diag1 {
                qubit: lo,
                d: [d[0], d[1]],
            });
        }
        return Some(PlannedOp::Diag2 { hi, lo, d });
    }
    // Controlled on `hi`: the hi=0 subspace (indices 0, 1) is identity and
    // decoupled from the hi=1 subspace.
    let zeros_hi = [1, 2, 3, 4, 6, 7, 8, 12, 9, 13];
    if m[0] == o() && m[5] == o() && zeros_hi.iter().all(|&k| m[k] == z()) {
        return Some(controlled_op(hi, lo, [m[10], m[11], m[14], m[15]]));
    }
    // Controlled on `lo`: the lo=0 subspace (indices 0, 2) is identity.
    let zeros_lo = [1, 2, 3, 4, 6, 8, 9, 11, 12, 14];
    if m[0] == o() && m[10] == o() && zeros_lo.iter().all(|&k| m[k] == z()) {
        return Some(controlled_op(lo, hi, [m[5], m[7], m[13], m[15]]));
    }
    // Exact SWAP.
    let swap_ones = [6, 9]; // rows 1->2 and 2->1, i.e. m[1*4+2] and m[2*4+1]
    if m[0] == o()
        && m[15] == o()
        && swap_ones.iter().all(|&k| m[k] == o())
        && (0..16).all(|k| k == 0 || k == 6 || k == 9 || k == 15 || m[k] == z())
    {
        return Some(PlannedOp::Swap { a: hi, b: lo });
    }
    Some(PlannedOp::Dense2 {
        hi,
        lo,
        m: Box::new(*m),
    })
}

/// Classifies a fused 8×8 block: the exact identity (gates that
/// cancelled) vanishes; everything else runs dense. No finer structure is
/// recovered — a triple only forms when the cost model already proved the
/// dense sweep cheapest against the block's parts.
fn classify_3q(q2: usize, q1: usize, q0: usize, m: Box<[C64; 64]>) -> Option<PlannedOp> {
    let identity = (0..8).all(|r| (0..8).all(|c| m[r * 8 + c] == if r == c { o() } else { z() }));
    if identity {
        return None;
    }
    Some(PlannedOp::Dense3 { q2, q1, q0, m })
}

/// The cheapest controlled-form op for a controlled 2×2 sub-block.
fn controlled_op(control: usize, target: usize, sub: [C64; 4]) -> PlannedOp {
    if sub[0] == z() && sub[3] == z() && sub[1] == o() && sub[2] == o() {
        return PlannedOp::CFlipX { control, target };
    }
    PlannedOp::CDense1 {
        control,
        target,
        m: sub,
    }
}

/// Lowers one gate to a single planned op without fusion (the conditional-
/// gate path). Returns `None` for the identity.
fn lower_gate_solo(gate: Gate, qubits: &[usize]) -> Option<PlannedOp> {
    match gate.kind() {
        GateKind::Identity => None,
        GateKind::Diagonal1 { d0, d1 } => Some(PlannedOp::Diag1 {
            qubit: qubits[0],
            d: [d0, d1],
        }),
        GateKind::FlipX => Some(PlannedOp::FlipX { qubit: qubits[0] }),
        GateKind::Dense1 { m } => Some(PlannedOp::Dense1 {
            qubit: qubits[0],
            m,
        }),
        GateKind::ControlledDiagonal1 { .. }
        | GateKind::ControlledFlipX
        | GateKind::ControlledDense1 { .. }
        | GateKind::Swap => {
            let (hi, lo) = (qubits[0].max(qubits[1]), qubits[0].min(qubits[1]));
            classify_2q(hi, lo, &gate4_oriented(gate, qubits[0], qubits[1]))
        }
        GateKind::DoublyControlledFlipX => Some(PlannedOp::Ccx {
            c0: qubits[0],
            c1: qubits[1],
            target: qubits[2],
        }),
        GateKind::ControlledSwap => Some(PlannedOp::CSwap {
            control: qubits[0],
            a: qubits[1],
            b: qubits[2],
        }),
        GateKind::General => Some(PlannedOp::DenseK {
            qubits: qubits.to_vec(),
            matrix: gate.matrix(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Fusion cost model
// ---------------------------------------------------------------------------

/// Relative cost of one full-state sweep, per kernel tier (see the module
/// docs): every tier pays the same memory-traffic base — at depth each
/// sweep streams the whole state, making traffic the binding cost — plus
/// an arithmetic term calibrated against the kernel bench rows
/// (`BENCH_sim_kernels.json`). Only the ratios matter; values are rounded
/// to quarter units so the thresholds stay stable across machines.
const COST_TRAFFIC: f64 = 2.0;
/// Pure index permutations (X, CX, SWAP): moves, no math.
const COST_PERM: f64 = COST_TRAFFIC + 0.25;
/// Diagonals: at most one phase multiply per amplitude.
const COST_DIAG: f64 = COST_TRAFFIC + 0.5;
/// Controlled dense 2×2: the butterfly on half the state.
const COST_CDENSE1: f64 = COST_TRAFFIC + 1.0;
/// Dense 2×2 butterfly: four complex MACs per pair.
const COST_DENSE1: f64 = COST_TRAFFIC + 2.0;
/// Dense 4×4: sixteen complex MACs per quad.
const COST_DENSE2: f64 = COST_TRAFFIC + 4.0;
/// Dense 8×8: sixty-four complex MACs per octet — the bar a triple fusion
/// must clear against the two sweeps it would replace.
const COST_DENSE3: f64 = COST_TRAFFIC + 8.0;

/// The modeled cost of executing a classified block as one sweep (`None`
/// — the exact identity — costs nothing).
fn sweep_cost(op: Option<&PlannedOp>) -> f64 {
    match op {
        None => 0.0,
        Some(PlannedOp::Diag1 { .. } | PlannedOp::Diag2 { .. }) => COST_DIAG,
        Some(PlannedOp::FlipX { .. } | PlannedOp::CFlipX { .. } | PlannedOp::Swap { .. }) => {
            COST_PERM
        }
        Some(PlannedOp::CDense1 { .. }) => COST_CDENSE1,
        Some(PlannedOp::Dense1 { .. }) => COST_DENSE1,
        Some(PlannedOp::Dense2 { .. }) => COST_DENSE2,
        // Block classification never yields the remaining variants; cost
        // anything unexpected as fully dense.
        Some(_) => COST_DENSE3,
    }
}

// ---------------------------------------------------------------------------
// Small exact matrix algebra (compile-time only)
// ---------------------------------------------------------------------------

#[inline]
fn z() -> C64 {
    C64::ZERO
}

#[inline]
fn o() -> C64 {
    C64::ONE
}

/// `a · b` for row-major 2×2 matrices.
fn mul2(a: &[C64; 4], b: &[C64; 4]) -> [C64; 4] {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// `a · b` for row-major 4×4 matrices, skipping exact-zero terms so
/// structural zeros survive composition exactly.
fn mul4(a: &[C64; 16], b: &[C64; 16]) -> [C64; 16] {
    let mut out = [C64::ZERO; 16];
    for r in 0..4 {
        for k in 0..4 {
            let ark = a[r * 4 + k];
            if ark == C64::ZERO {
                continue;
            }
            for c in 0..4 {
                let bkc = b[k * 4 + c];
                if bkc != C64::ZERO {
                    out[r * 4 + c] += ark * bkc;
                }
            }
        }
    }
    out
}

/// `m ⊗ I`: the 2×2 acting on the `hi` bit of a 4×4.
fn expand_hi(m: &[C64; 4]) -> [C64; 16] {
    let mut out = [C64::ZERO; 16];
    for r in 0..2 {
        for c in 0..2 {
            out[(r * 2) * 4 + c * 2] = m[r * 2 + c];
            out[(r * 2 + 1) * 4 + c * 2 + 1] = m[r * 2 + c];
        }
    }
    out
}

/// `I ⊗ m`: the 2×2 acting on the `lo` bit of a 4×4.
fn expand_lo(m: &[C64; 4]) -> [C64; 16] {
    let mut out = [C64::ZERO; 16];
    for r in 0..2 {
        for c in 0..2 {
            out[r * 4 + c] = m[r * 2 + c];
            out[(r + 2) * 4 + c + 2] = m[r * 2 + c];
        }
    }
    out
}

/// The gate's 4×4 oriented so `max(q0, q1)` is the matrix MSB. Gate
/// matrices put operand 0 in the MSB, so when operand 0 is the *smaller*
/// qubit the two bit roles are transposed (an exact entry permutation).
fn gate4_oriented(gate: Gate, q0: usize, q1: usize) -> [C64; 16] {
    let matrix = gate.matrix();
    debug_assert_eq!(matrix.dim(), 4);
    let mut m = [C64::ZERO; 16];
    let permute = q0 < q1;
    for r in 0..4 {
        for c in 0..4 {
            let (pr, pc) = if permute {
                (swap_bits2(r), swap_bits2(c))
            } else {
                (r, c)
            };
            m[pr * 4 + pc] = matrix.get(r, c);
        }
    }
    m
}

/// Swaps the two bits of a 2-bit index.
#[inline]
fn swap_bits2(i: usize) -> usize {
    ((i & 1) << 1) | (i >> 1)
}

/// `a · b` for row-major 8×8 matrices, skipping exact-zero terms so
/// structural zeros survive composition exactly.
fn mul8(a: &[C64; 64], b: &[C64; 64]) -> [C64; 64] {
    let mut out = [C64::ZERO; 64];
    for r in 0..8 {
        for k in 0..8 {
            let ark = a[r * 8 + k];
            if ark == C64::ZERO {
                continue;
            }
            for c in 0..8 {
                let bkc = b[k * 8 + c];
                if bkc != C64::ZERO {
                    out[r * 8 + c] += ark * bkc;
                }
            }
        }
    }
    out
}

/// The bit position (2 = MSB) of `q` within the sorted triple
/// `q2 > q1 > q0`.
#[inline]
fn pos_in3(q2: usize, q1: usize, q0: usize, q: usize) -> usize {
    if q == q2 {
        2
    } else if q == q1 {
        1
    } else {
        debug_assert_eq!(q, q0);
        0
    }
}

/// The 2×2 `m` acting on bit `pos` (0 = LSB) of an 8×8.
fn expand2_to8(m: &[C64; 4], pos: usize) -> [C64; 64] {
    let mut out = [C64::ZERO; 64];
    for r in 0..8 {
        for c in 0..8 {
            if (r & !(1 << pos)) != (c & !(1 << pos)) {
                continue;
            }
            out[r * 8 + c] = m[((r >> pos) & 1) * 2 + ((c >> pos) & 1)];
        }
    }
    out
}

/// The 4×4 `m` acting on bits `pos_hi` (its MSB) and `pos_lo` (its LSB)
/// of an 8×8; the remaining bit is untouched.
fn expand4_to8(m: &[C64; 16], pos_hi: usize, pos_lo: usize) -> [C64; 64] {
    debug_assert_ne!(pos_hi, pos_lo);
    let keep = !((1usize << pos_hi) | (1 << pos_lo)) & 0b111;
    let mut out = [C64::ZERO; 64];
    for r in 0..8 {
        for c in 0..8 {
            if (r & keep) != (c & keep) {
                continue;
            }
            let ri = (((r >> pos_hi) & 1) << 1) | ((r >> pos_lo) & 1);
            let ci = (((c >> pos_hi) & 1) << 1) | ((c >> pos_lo) & 1);
            out[r * 8 + c] = m[ri * 4 + ci];
        }
    }
    out
}

/// The 8×8 permutation of a Toffoli with controls at bit positions
/// `pc0`/`pc1` and target at `pt` (positions within a sorted triple).
fn ccx8(pc0: usize, pc1: usize, pt: usize) -> [C64; 64] {
    let mut out = [C64::ZERO; 64];
    for i in 0..8 {
        let j = if (i >> pc0) & 1 == 1 && (i >> pc1) & 1 == 1 {
            i ^ (1 << pt)
        } else {
            i
        };
        out[j * 8 + i] = C64::ONE;
    }
    out
}

/// The 8×8 permutation of a Fredkin with control at bit position `pc`
/// exchanging bits `pa` and `pb`.
fn cswap8(pc: usize, pa: usize, pb: usize) -> [C64; 64] {
    let mut out = [C64::ZERO; 64];
    for i in 0..8 {
        let j = if (i >> pc) & 1 == 1 && ((i >> pa) & 1) != ((i >> pb) & 1) {
            i ^ (1 << pa) ^ (1 << pb)
        } else {
            i
        };
        out[j * 8 + i] = C64::ONE;
    }
    out
}

// ---------------------------------------------------------------------------
// Fingerprinting and the plan cache
// ---------------------------------------------------------------------------

/// 128-bit FNV-1a content hash of a circuit: register sizes plus every
/// op's tag, gate name, exact parameter bits and operand indices. Equal
/// circuits hash equal; at 128 bits, accidental collisions are out of
/// reach for any realistic workload.
pub fn fingerprint(circuit: &Circuit) -> u128 {
    let mut h = Fnv128::new();
    h.write_usize(circuit.num_qubits());
    h.write_usize(circuit.num_clbits());
    for op in circuit.ops() {
        match op {
            Op::Gate { gate, qubits } => {
                h.write_u8(1);
                h.write_gate(gate);
                h.write_indices(qubits);
            }
            Op::Measure { qubit, clbit } => {
                h.write_u8(2);
                h.write_usize(*qubit);
                h.write_usize(*clbit);
            }
            Op::Reset { qubit } => {
                h.write_u8(3);
                h.write_usize(*qubit);
            }
            Op::Barrier { qubits } => {
                h.write_u8(4);
                h.write_indices(qubits);
            }
            Op::CondGate {
                gate,
                qubits,
                clbit,
                value,
            } => {
                h.write_u8(5);
                h.write_gate(gate);
                h.write_indices(qubits);
                h.write_usize(*clbit);
                h.write_u8(u8::from(*value));
            }
        }
    }
    h.finish()
}

struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u128::from(b)).wrapping_mul(Self::PRIME);
    }

    fn write_usize(&mut self, x: usize) {
        for b in (x as u64).to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_indices(&mut self, xs: &[usize]) {
        self.write_usize(xs.len());
        for &x in xs {
            self.write_usize(x);
        }
    }

    fn write_gate(&mut self, gate: &Gate) {
        for b in gate.name().bytes() {
            self.write_u8(b);
        }
        for p in gate.params() {
            for b in p.to_bits().to_le_bytes() {
                self.write_u8(b);
            }
        }
    }

    fn finish(&self) -> u128 {
        self.0
    }
}

/// An LRU of compiled plans keyed by [`fingerprint`]. Wrap it in a mutex
/// and share it (the executor does, via [`shared_cache`] by default): hits
/// return the `Arc` without touching the circuit again.
#[derive(Debug)]
pub struct PlanCache {
    cap: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    fusion_declined: u64,
    map: HashMap<u128, (u64, Arc<CircuitPlan>)>,
    /// Noisy replay plans, keyed by circuit fingerprint plus the noise
    /// model's structural signature (which channels draw randomness).
    noisy: HashMap<(u128, u8), (u64, Arc<NoisyPlan>)>,
}

impl PlanCache {
    /// An empty cache evicting least-recently-used entries past `cap`
    /// (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            cap: cap.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            fusion_declined: 0,
            map: HashMap::new(),
            noisy: HashMap::new(),
        }
    }

    /// The cached plan for `circuit`, compiling and inserting on miss.
    /// Traffic is double-counted on purpose: into this cache's own
    /// [`PlanCacheStats`] and into the process-wide registry
    /// (`plan.cache_hits` / `plan.cache_misses` / `plan.cache_evictions`),
    /// which aggregates over every cache in the process.
    pub fn get_or_compile(&mut self, circuit: &Circuit) -> Arc<CircuitPlan> {
        let key = fingerprint(circuit);
        self.tick += 1;
        if let Some((last_used, plan)) = self.map.get_mut(&key) {
            *last_used = self.tick;
            self.hits += 1;
            plan_metrics().cache_hits.inc();
            return Arc::clone(plan);
        }
        self.misses += 1;
        plan_metrics().cache_misses.inc();
        let plan = Arc::new(CircuitPlan::compile(circuit));
        self.fusion_declined += plan.fusion_declined() as u64;
        if self.map.len() >= self.cap {
            if let Some(&oldest) = self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| k) {
                self.map.remove(&oldest);
                self.evictions += 1;
                plan_metrics().cache_evictions.inc();
            }
        }
        self.map.insert(key, (self.tick, Arc::clone(&plan)));
        plan
    }

    /// The cached noisy replay plan for `circuit` under `noise`'s channel
    /// signature, compiling and inserting on miss. Shares this cache's
    /// counters; the noisy map has its own `cap`-entry LRU budget. Rate
    /// *values* are not part of the key — replay reads them live — so
    /// sweeping a rate reuses one compiled plan.
    pub fn get_or_compile_noisy(
        &mut self,
        circuit: &Circuit,
        noise: &NoiseModel,
    ) -> Arc<NoisyPlan> {
        let key = (fingerprint(circuit), noise_signature(noise));
        self.tick += 1;
        if let Some((last_used, plan)) = self.noisy.get_mut(&key) {
            *last_used = self.tick;
            self.hits += 1;
            plan_metrics().cache_hits.inc();
            return Arc::clone(plan);
        }
        self.misses += 1;
        plan_metrics().cache_misses.inc();
        let plan = Arc::new(NoisyPlan::compile(circuit, noise));
        if self.noisy.len() >= self.cap {
            if let Some(&oldest) = self
                .noisy
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k)
            {
                self.noisy.remove(&oldest);
                self.evictions += 1;
                plan_metrics().cache_evictions.inc();
            }
        }
        self.noisy.insert(key, (self.tick, Arc::clone(&plan)));
        plan
    }

    /// The eviction threshold this cache was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Cached plan count (noiseless and noisy replay plans).
    pub fn len(&self) -> usize {
        self.map.len() + self.noisy.len()
    }

    /// `true` when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty() && self.noisy.is_empty()
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses (compiles) since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Every counter and size in one copy — what
    /// [`crate::exec::Executor::plan_cache_stats`] and the serve `stats`
    /// op surface.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            fusion_declined: self.fusion_declined,
            len: self.len(),
            capacity: self.cap,
        }
    }
}

/// A point-in-time copy of one [`PlanCache`]'s counters and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookup hits since construction.
    pub hits: u64,
    /// Lookup misses (compiles) since construction.
    pub misses: u64,
    /// LRU evictions since construction.
    pub evictions: u64,
    /// Densifications the cost model declined across this cache's
    /// compiles (see the module docs on the cost model).
    pub fusion_declined: u64,
    /// Cached plan count (noiseless and noisy replay plans).
    pub len: usize,
    /// The eviction threshold.
    pub capacity: usize,
}

/// The process-wide plan cache every [`crate::exec::Executor`] uses unless
/// given a private one — so the grader's fresh per-call executors still
/// share compiled plans across repeated candidate/reference runs.
///
/// Its capacity is read from `QUGEN_PLAN_CACHE` (via [`capacity_from_env`])
/// exactly once, at first use; later changes to the variable only affect
/// private caches built through [`crate::exec::ExecutorConfig::from_env`].
pub fn shared_cache() -> Arc<Mutex<PlanCache>> {
    static SHARED: OnceLock<Arc<Mutex<PlanCache>>> = OnceLock::new();
    Arc::clone(SHARED.get_or_init(|| Arc::new(Mutex::new(PlanCache::new(capacity_from_env())))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::math::Matrix;
    use rand::SeedableRng;

    /// Applies the plan and the unfused per-gate path to the same basis
    /// states and requires identical final states to 1e-12.
    fn assert_plan_matches(circuit: &Circuit) {
        let plan = CircuitPlan::compile(circuit);
        let n = circuit.num_qubits();
        for basis in [0usize, (1 << n) - 1, 1] {
            let mut fused = StateVector::basis(n, basis);
            plan.apply_unitary(&mut fused);
            let mut unfused = StateVector::basis(n, basis);
            for op in circuit.ops() {
                if let Op::Gate { gate, qubits } = op {
                    unfused.apply_gate(*gate, qubits);
                }
            }
            for (i, (a, b)) in fused
                .amplitudes()
                .iter()
                .zip(unfused.amplitudes())
                .enumerate()
            {
                assert!(a.approx_eq(*b, 1e-12), "basis {basis}, amp {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn capacity_parsing_is_typed_and_trims() {
        assert_eq!(parse_capacity("128"), Ok(128));
        assert_eq!(parse_capacity(" 16\n"), Ok(16));
        assert_eq!(parse_capacity("0"), Err(PlanCacheParseError::ZeroCapacity));
        assert_eq!(
            parse_capacity("lots"),
            Err(PlanCacheParseError::NotAnInteger {
                value: "lots".into()
            })
        );
        assert_eq!(
            parse_capacity("-4"),
            Err(PlanCacheParseError::NotAnInteger { value: "-4".into() })
        );
        // Display carries the offending value for the warning line.
        let shown = PlanCacheParseError::NotAnInteger {
            value: "lots".into(),
        }
        .to_string();
        assert!(shown.contains("`lots`"), "{shown}");
        // The env reader resolves to the default when the variable is
        // unset (mutating process-global env from a test would race; the
        // exec-level env test exercises the set/garbage paths serially).
        if std::env::var("QUGEN_PLAN_CACHE").is_err() {
            assert_eq!(try_capacity_from_env(), Ok(PLAN_CACHE_CAPACITY));
            assert_eq!(capacity_from_env(), PLAN_CACHE_CAPACITY);
        }
    }

    #[test]
    fn cache_reports_its_capacity() {
        assert_eq!(PlanCache::new(7).capacity(), 7);
        // Clamped to ≥ 1, matching the constructor contract.
        assert_eq!(PlanCache::new(0).capacity(), 1);
    }

    #[test]
    fn adjacent_1q_runs_fuse_to_one_block() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).t(0).push_gate(Gate::SX, &[0]).rz(0.3, 0).h(1);
        let plan = CircuitPlan::compile(&qc);
        // Qubit 0's four gates fuse to one block; qubit 1 keeps its H.
        assert_eq!(plan.fused_unitaries(), 2);
        assert_eq!(plan.source_gate_ops(), 5);
        assert_plan_matches(&qc);
    }

    #[test]
    fn disjoint_gates_commute_through_the_pending_blocks() {
        // H(0), H(1), T(0): the T must fuse with qubit 0's H even though a
        // gate on qubit 1 sits between them in program order.
        let mut qc = Circuit::new(2, 0);
        qc.h(0).h(1).t(0);
        let plan = CircuitPlan::compile(&qc);
        assert_eq!(plan.fused_unitaries(), 2);
        assert_plan_matches(&qc);
    }

    #[test]
    fn one_q_gates_fold_into_2q_superblocks() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).t(1).cx(0, 1).h(1);
        let plan = CircuitPlan::compile(&qc);
        // H(0) and T(1) absorb into the CX superblock; H(1) rides on top.
        assert_eq!(plan.fused_unitaries(), 1);
        assert!(matches!(plan.ops()[0], PlannedOp::Dense2 { .. }));
        assert_plan_matches(&qc);
    }

    #[test]
    fn cancelling_gates_vanish() {
        let mut qc = Circuit::new(1, 0);
        qc.x(0).x(0);
        assert_eq!(CircuitPlan::compile(&qc).fused_unitaries(), 0);
        let mut qc = Circuit::new(1, 0);
        qc.t(0).tdg(0);
        assert_eq!(CircuitPlan::compile(&qc).fused_unitaries(), 0);
    }

    #[test]
    fn unfused_gates_keep_their_specialized_tiers() {
        let mut qc = Circuit::new(3, 0);
        qc.t(0).x(1).cx(0, 1).cz(1, 2).swap(0, 2).ccx(0, 1, 2);
        // Force no fusion by interleaving a flushing 3q gate first.
        let plan = CircuitPlan::compile(&qc);
        assert_plan_matches(&qc);
        // A lone CZ (diagonal) emitted from a plan must stay diagonal-tier:
        let mut qc = Circuit::new(2, 0);
        qc.cz(0, 1);
        let plan2 = CircuitPlan::compile(&qc);
        assert!(matches!(plan2.ops()[0], PlannedOp::Diag2 { .. }));
        // A lone CX keeps the permutation tier.
        let mut qc = Circuit::new(2, 0);
        qc.cx(1, 0);
        let plan3 = CircuitPlan::compile(&qc);
        assert!(matches!(
            plan3.ops()[0],
            PlannedOp::CFlipX {
                control: 1,
                target: 0
            }
        ));
        // A lone SWAP keeps the swap tier.
        let mut qc = Circuit::new(2, 0);
        qc.swap(0, 1);
        assert!(matches!(
            CircuitPlan::compile(&qc).ops()[0],
            PlannedOp::Swap { .. }
        ));
        // A lone CH keeps the controlled-dense tier (control below target).
        let mut qc = Circuit::new(2, 0);
        qc.ch(0, 1);
        assert!(matches!(
            CircuitPlan::compile(&qc).ops()[0],
            PlannedOp::CDense1 {
                control: 0,
                target: 1,
                ..
            }
        ));
        let _ = plan;
    }

    #[test]
    fn rotation_brickwork_forms_dense3_triples() {
        // Dense rotation layers make the fused pair blocks dense enough
        // that one 8×8 sweep beats the two-sweep split, so the fuser
        // forms Dense3 triples (the deep-circuit bench shape).
        let mut qc = Circuit::new(4, 0);
        for layer in 0..4usize {
            for q in 0..4 {
                qc.rx(0.3 + 0.1 * (q + layer) as f64, q);
                qc.rz(0.7 - 0.2 * q as f64, q);
            }
            if layer % 2 == 0 {
                qc.cx(0, 1).cx(2, 3);
            } else {
                qc.cx(1, 2);
            }
        }
        let plan = CircuitPlan::compile(&qc);
        assert!(
            plan.ops()
                .iter()
                .any(|op| matches!(op, PlannedOp::Dense3 { .. })),
            "expected a Dense3 superblock in {:?}",
            plan.ops()
        );
        assert!(plan.fused_unitaries() < plan.source_gate_ops());
        assert_plan_matches(&qc);
    }

    #[test]
    fn cost_model_declines_cheap_parts() {
        // A CX-only chain never densifies: two permutation sweeps are
        // cheaper than one 8×8, so every triple opportunity is declined.
        let mut qc = Circuit::new(3, 0);
        qc.cx(0, 1).cx(1, 2).cx(0, 1);
        let plan = CircuitPlan::compile(&qc);
        assert!(
            plan.ops()
                .iter()
                .all(|op| !matches!(op, PlannedOp::Dense3 { .. })),
            "{:?}",
            plan.ops()
        );
        assert!(plan.fusion_declined() > 0);
        assert_plan_matches(&qc);
        // A 1q diagonal beside a 2q diagonal still absorbs (the merged
        // block stays in the diagonal tier) with nothing declined.
        let mut qc = Circuit::new(2, 0);
        qc.t(0).cz(0, 1).s(1);
        let plan = CircuitPlan::compile(&qc);
        assert_eq!(plan.fusion_declined(), 0);
        assert_eq!(plan.fused_unitaries(), 1);
        assert!(matches!(plan.ops()[0], PlannedOp::Diag2 { .. }));
        assert_plan_matches(&qc);
        // An X beside a CZ stays two cheap sweeps instead of densifying
        // into one Dense2.
        let mut qc = Circuit::new(2, 0);
        qc.x(0).cz(0, 1);
        let plan = CircuitPlan::compile(&qc);
        assert_eq!(plan.fusion_declined(), 1);
        assert_eq!(plan.fused_unitaries(), 2);
        assert!(
            plan.ops()
                .iter()
                .all(|op| !matches!(op, PlannedOp::Dense2 { .. })),
            "{:?}",
            plan.ops()
        );
        assert_plan_matches(&qc);
    }

    #[test]
    fn toffoli_composes_onto_an_open_triple() {
        // Once a Dense3 triple is open on exactly the Toffoli's operands,
        // the 3q permutation composes into it instead of flushing it.
        let mut qc = Circuit::new(3, 0);
        for q in 0..3 {
            qc.h(q).t(q);
        }
        qc.cx(0, 1).cx(1, 2).ccx(0, 1, 2).cswap(2, 0, 1);
        let plan = CircuitPlan::compile(&qc);
        assert_eq!(plan.fused_unitaries(), 1, "{:?}", plan.ops());
        assert!(matches!(plan.ops()[0], PlannedOp::Dense3 { .. }));
        assert_plan_matches(&qc);
    }

    #[test]
    fn same_pair_2q_gates_fuse() {
        let mut qc = Circuit::new(2, 0);
        qc.cx(0, 1).cx(1, 0).cx(0, 1); // = SWAP, exactly (permutation entries)
        let plan = CircuitPlan::compile(&qc);
        assert_eq!(plan.fused_unitaries(), 1);
        assert!(matches!(plan.ops()[0], PlannedOp::Swap { .. }));
        assert_plan_matches(&qc);
    }

    #[test]
    fn measure_flushes_only_its_own_qubit() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).h(1);
        qc.measure(0, 0);
        qc.t(1); // must still fuse with H(1) across the measurement
        let plan = CircuitPlan::compile(&qc);
        let fused: Vec<_> = plan
            .ops()
            .iter()
            .filter(|op| !matches!(op, PlannedOp::Measure { .. }))
            .collect();
        assert_eq!(fused.len(), 2, "H(0) flushed, H·T fused on qubit 1");
        assert_eq!(plan.measure_map(), &[(0, 0)]);
    }

    #[test]
    fn trajectory_semantics_cover_measure_reset_cond() {
        let mut qc = Circuit::new(2, 2);
        qc.x(0).measure(0, 0);
        qc.cond_gate(Gate::X, &[1], 0, true);
        qc.measure(1, 1);
        qc.reset(0);
        let plan = CircuitPlan::compile(&qc);
        let mut sv = StateVector::zero(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut word = OutcomeWord::zero();
        plan.run_trajectory(&mut sv, &mut rng, &mut word);
        assert!(word.bit(0) && word.bit(1));
        // Reset put qubit 0 back to |0>.
        assert!(sv.prob_one(0) < 1e-12);
    }

    #[test]
    fn fingerprint_distinguishes_circuits_and_params() {
        let mut a = Circuit::new(2, 2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2, 2);
        b.h(0).cx(0, 1);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        b.rz(0.5, 1);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1);
        c.rz(0.5000001, 1);
        assert_ne!(fingerprint(&b), fingerprint(&c));
        // Operand order matters.
        let mut d = Circuit::new(2, 2);
        d.h(0).cx(1, 0);
        assert_ne!(fingerprint(&a), fingerprint(&d));
    }

    #[test]
    fn plan_cache_hits_and_evicts() {
        let mut cache = PlanCache::new(2);
        let mut a = Circuit::new(1, 0);
        a.h(0);
        let mut b = Circuit::new(1, 0);
        b.x(0);
        let mut c = Circuit::new(1, 0);
        c.t(0);
        let pa = cache.get_or_compile(&a);
        assert!(Arc::ptr_eq(&pa, &cache.get_or_compile(&a)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.get_or_compile(&b);
        cache.get_or_compile(&c); // evicts `a` (least recently used)
        assert_eq!(cache.len(), 2);
        cache.get_or_compile(&a);
        assert_eq!(cache.misses(), 4, "evicted plan recompiles");
        assert_eq!(cache.evictions(), 2, "b's insert and a's return each evict");
        let stats = cache.stats();
        assert_eq!(
            (
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.len,
                stats.capacity
            ),
            (1, 4, 2, 2, 2)
        );
    }

    #[test]
    fn oriented_gate_matrices_match_the_reference_unitary() {
        // Both operand orders of every 2q kind against Gate::matrix through
        // the dense oracle.
        for gate in [
            Gate::CX,
            Gate::CZ,
            Gate::CH,
            Gate::CY,
            Gate::SWAP,
            Gate::CRX(0.7),
            Gate::CRZ(-0.4),
            Gate::CP(1.1),
        ] {
            for (q0, q1) in [(0usize, 1usize), (1, 0), (0, 2), (2, 0)] {
                let m = gate4_oriented(gate, q0, q1);
                let (hi, lo) = (q0.max(q1), q0.min(q1));
                let mut via_plan = StateVector::basis(3, 0b101);
                via_plan.apply_gate(Gate::H, &[0]);
                via_plan.apply_gate(Gate::T, &[1]);
                let mut via_gate = via_plan.clone();
                kernels::apply_dense2(via_plan.amps_mut(), hi, lo, &m);
                via_gate.apply_gate(gate, &[q0, q1]);
                for (a, b) in via_plan.amplitudes().iter().zip(via_gate.amplitudes()) {
                    assert!(a.approx_eq(*b, 1e-12), "{gate:?} on ({q0},{q1})");
                }
            }
        }
    }

    #[test]
    fn general_fallback_is_total() {
        // No built-in gate classifies as General, but the solo path and the
        // DenseK op must still execute one if a future gate does.
        let op = PlannedOp::DenseK {
            qubits: vec![0],
            matrix: Matrix::identity(2),
        };
        let mut sv = StateVector::zero(1);
        apply_unitary_op(&mut sv, &op);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }
}
