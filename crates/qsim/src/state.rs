//! Dense state-vector simulation.
//!
//! Qubit `i` corresponds to bit `i` of the basis-state index (little-endian
//! state indexing). Gate matrices from [`qcir::gate::Gate::matrix`] put the
//! gate's first operand in the most significant matrix-bit, and
//! [`StateVector::apply_gate`] performs the index bookkeeping between the
//! two conventions.
//!
//! Gate application dispatches on [`qcir::gate::Gate::kind`] to the
//! specialized kernels in [`crate::kernels`]; the naive full-scan
//! formulation is kept as [`StateVector::apply_matrix_reference`] and serves
//! as the correctness oracle in tests and benches.

use crate::kernels::{self, DenseScratch};
use crate::noise::Pauli;
use qcir::gate::{Gate, GateKind};
use qcir::math::{Matrix, C64};
use rand::Rng;

/// A pure quantum state over `n` qubits.
///
/// ```
/// use qsim::state::StateVector;
/// use qcir::gate::Gate;
///
/// let mut psi = StateVector::zero(2);
/// psi.apply_gate(Gate::H, &[0]);
/// psi.apply_gate(Gate::CX, &[0, 1]);
/// let probs = psi.probabilities();
/// assert!((probs[0b00] - 0.5).abs() < 1e-12);
/// assert!((probs[0b11] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
    /// Reusable buffers for the general dense path; grown on first use and
    /// never reallocated afterwards. Excluded from equality.
    scratch: DenseScratch,
}

impl PartialEq for StateVector {
    fn eq(&self, other: &Self) -> bool {
        self.num_qubits == other.num_qubits && self.amps == other.amps
    }
}

impl StateVector {
    /// The all-zeros computational basis state |0...0>.
    ///
    /// # Panics
    ///
    /// Panics when `num_qubits > 26` (the dense representation would exceed
    /// a gigabyte of amplitudes).
    pub fn zero(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= crate::backend::DENSE_QUBIT_CAP,
            "dense simulation capped at {} qubits",
            crate::backend::DENSE_QUBIT_CAP
        );
        let mut amps = vec![C64::ZERO; 1 << num_qubits];
        amps[0] = C64::ONE;
        StateVector {
            num_qubits,
            amps,
            scratch: DenseScratch::default(),
        }
    }

    /// Builds a state from an explicit amplitude vector, normalizing it.
    ///
    /// # Panics
    ///
    /// Panics when the length is not a power of two, exceeds the dense
    /// qubit cap, or the vector has (numerically) zero norm.
    pub fn from_amplitudes(mut amps: Vec<C64>) -> Self {
        assert!(
            amps.len().is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let num_qubits = amps.len().trailing_zeros() as usize;
        assert!(
            num_qubits <= crate::backend::DENSE_QUBIT_CAP,
            "dense simulation capped at {} qubits",
            crate::backend::DENSE_QUBIT_CAP
        );
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(norm_sqr > 1e-300, "cannot normalize a zero vector");
        let scale = 1.0 / norm_sqr.sqrt();
        for a in &mut amps {
            *a = *a * scale;
        }
        StateVector {
            num_qubits,
            amps,
            scratch: DenseScratch::default(),
        }
    }

    /// Fallible constructor for the all-zeros state: returns a typed
    /// [`SimError`](crate::backend::SimError) past the dense cap instead of
    /// panicking (the backend layer's entry point).
    ///
    /// # Errors
    ///
    /// [`SimError::QubitCapExceeded`](crate::backend::SimError) when
    /// `num_qubits` exceeds [`crate::backend::DENSE_QUBIT_CAP`].
    pub fn try_zero(num_qubits: usize) -> Result<Self, crate::backend::SimError> {
        if num_qubits > crate::backend::DENSE_QUBIT_CAP {
            return Err(crate::backend::SimError::QubitCapExceeded {
                backend: "dense",
                num_qubits,
                cap: crate::backend::DENSE_QUBIT_CAP,
            });
        }
        Ok(StateVector::zero(num_qubits))
    }

    /// Resets the state to |0…0> in place, reusing the allocation (the
    /// trajectory executor calls this once per shot).
    pub fn reinit(&mut self) {
        self.amps.fill(C64::ZERO);
        self.amps[0] = C64::ONE;
    }

    /// A specific computational basis state.
    ///
    /// # Panics
    ///
    /// Panics when `basis >= 2^num_qubits`.
    pub fn basis(num_qubits: usize, basis: usize) -> Self {
        let mut sv = StateVector::zero(num_qubits);
        assert!(basis < sv.amps.len(), "basis index out of range");
        sv.amps[0] = C64::ZERO;
        sv.amps[basis] = C64::ONE;
        sv
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude vector (little-endian basis indexing).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable amplitude access for the plan executor, which drives the
    /// kernel layer directly from precompiled ops. Callers must preserve
    /// normalization (plans only apply unitaries).
    pub(crate) fn amps_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Applies a gate to the given qubits (gate operand order).
    ///
    /// Dispatches on [`Gate::kind`] to the specialized kernels in
    /// [`crate::kernels`] — diagonal gates become pure phase multiplies,
    /// permutation gates become index swaps, dense single-qubit blocks get a
    /// butterfly update — and performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics when operand count mismatches the gate arity or indices are
    /// out of range / duplicated.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        assert_eq!(qubits.len(), gate.num_qubits(), "gate arity mismatch");
        self.check_operands(qubits);
        let amps = &mut self.amps[..];
        match gate.kind() {
            GateKind::Identity => {}
            GateKind::Diagonal1 { d0, d1 } => kernels::apply_diag1(amps, qubits[0], d0, d1),
            GateKind::FlipX => kernels::apply_x(amps, qubits[0]),
            GateKind::Dense1 { m } => kernels::apply_1q(amps, qubits[0], &m),
            GateKind::ControlledDiagonal1 { d0, d1 } => {
                kernels::apply_controlled_diag1(amps, qubits[0], qubits[1], d0, d1)
            }
            GateKind::ControlledFlipX => kernels::apply_cx(amps, qubits[0], qubits[1]),
            GateKind::ControlledDense1 { m } => {
                kernels::apply_controlled_1q(amps, qubits[0], qubits[1], &m)
            }
            GateKind::Swap => kernels::apply_swap(amps, qubits[0], qubits[1]),
            GateKind::DoublyControlledFlipX => {
                kernels::apply_ccx(amps, qubits[0], qubits[1], qubits[2])
            }
            GateKind::ControlledSwap => kernels::apply_cswap(amps, qubits[0], qubits[1], qubits[2]),
            GateKind::General => {
                kernels::apply_dense(amps, &gate.matrix(), qubits, &mut self.scratch)
            }
        }
    }

    /// Applies a single-qubit Pauli directly (the noise-injection hot path:
    /// no gate classification, no matrix).
    ///
    /// # Panics
    ///
    /// Panics when `qubit` is out of range.
    pub fn apply_pauli(&mut self, qubit: usize, pauli: Pauli) {
        assert!(qubit < self.num_qubits, "qubit index out of range");
        match pauli {
            Pauli::X => kernels::apply_x(&mut self.amps, qubit),
            Pauli::Y => kernels::apply_y(&mut self.amps, qubit),
            Pauli::Z => kernels::apply_diag1(&mut self.amps, qubit, C64::ONE, -C64::ONE),
        }
    }

    /// Applies an arbitrary `2^k x 2^k` unitary to `k` qubits.
    ///
    /// The matrix convention is big-endian over `qubits`: `qubits[0]` is the
    /// most significant bit of the matrix row/column index. Uses the general
    /// kernel ([`crate::kernels::apply_dense`]) with scratch buffers reused
    /// across calls.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch, out-of-range or duplicate qubits.
    pub fn apply_matrix(&mut self, matrix: &Matrix, qubits: &[usize]) {
        assert_eq!(matrix.dim(), 1 << qubits.len(), "matrix dimension mismatch");
        self.check_operands(qubits);
        kernels::apply_dense(&mut self.amps, matrix, qubits, &mut self.scratch);
    }

    /// The original full-scan dense implementation, kept verbatim as the
    /// reference oracle: tests and benches compare the kernel layer against
    /// it (bit-exact up to 1e-12) and it is the baseline the ≥5x speedup is
    /// measured from.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch, out-of-range or duplicate qubits.
    pub fn apply_matrix_reference(&mut self, matrix: &Matrix, qubits: &[usize]) {
        let k = qubits.len();
        assert_eq!(matrix.dim(), 1 << k, "matrix dimension mismatch");
        self.check_operands(qubits);
        let n = self.amps.len();
        let dim = 1 << k;
        // Masks for the target bits, in gate order (qubits[0] = MSB).
        let shifts: Vec<usize> = qubits.to_vec();
        let mut scratch = vec![C64::ZERO; dim];

        // Iterate over all basis indices with the target bits cleared.
        let target_mask: usize = qubits.iter().map(|&q| 1usize << q).sum();
        let mut base = 0usize;
        loop {
            if base & target_mask == 0 {
                // Gather.
                for (row, amp) in scratch.iter_mut().enumerate() {
                    let mut idx = base;
                    for (j, &q) in shifts.iter().enumerate() {
                        if (row >> (k - 1 - j)) & 1 == 1 {
                            idx |= 1 << q;
                        }
                    }
                    *amp = self.amps[idx];
                }
                // Multiply and scatter.
                for row in 0..dim {
                    let mut acc = C64::ZERO;
                    for (col, &amp) in scratch.iter().enumerate() {
                        let m = matrix.get(row, col);
                        if m != C64::ZERO {
                            acc += m * amp;
                        }
                    }
                    let mut idx = base;
                    for (j, &q) in shifts.iter().enumerate() {
                        if (row >> (k - 1 - j)) & 1 == 1 {
                            idx |= 1 << q;
                        }
                    }
                    self.amps[idx] = acc;
                }
            }
            base += 1;
            if base >= n {
                break;
            }
        }
    }

    /// Validates operand indices: in range and mutually distinct.
    fn check_operands(&self, qubits: &[usize]) {
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit index out of range");
            assert!(!qubits[..i].contains(&q), "duplicate qubit operand");
        }
    }

    /// The probability of measuring `1` on `qubit`.
    ///
    /// Iterates only the `2^(n-1)` set-bit indices by stride arithmetic
    /// rather than filtering the whole vector.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let step = 1usize << qubit;
        let mut total = 0.0;
        for block in self.amps.chunks_exact(step << 1) {
            for a in &block[step..] {
                total += a.norm_sqr();
            }
        }
        total
    }

    /// Measures `qubit` in the computational basis, collapsing the state.
    pub fn measure(&mut self, qubit: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(qubit);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.collapse(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto `outcome` and renormalizes.
    pub fn collapse(&mut self, qubit: usize, outcome: bool) {
        let mask = 1usize << qubit;
        let mut norm = 0.0;
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if ((i & mask) != 0) != outcome {
                *amp = C64::ZERO;
            } else {
                norm += amp.norm_sqr();
            }
        }
        if norm > 0.0 {
            let scale = 1.0 / norm.sqrt();
            for amp in &mut self.amps {
                *amp = *amp * scale;
            }
        }
    }

    /// Resets `qubit` to |0> (measure + conditional X, without recording).
    pub fn reset(&mut self, qubit: usize, rng: &mut impl Rng) {
        let outcome = self.measure(qubit, rng);
        if outcome {
            self.apply_pauli(qubit, Pauli::X);
        }
    }

    /// Probability of every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Samples a basis state index from the current distribution.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, amp) in self.amps.iter().enumerate() {
            acc += amp.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// `|<self|other>|^2`.
    ///
    /// # Panics
    ///
    /// Panics when qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let mut ip = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            ip += a.conj() * *b;
        }
        ip.norm_sqr()
    }

    /// Squared norm (should be 1 up to numerical error).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }
}

/// Computes the full unitary of a measurement-free circuit by applying it to
/// every basis state. Used by the grader for unitary-equivalence checks on
/// small circuits.
///
/// # Panics
///
/// Panics when the circuit contains non-unitary operations or has more than
/// 12 qubits (the dense unitary would be too large).
pub fn circuit_unitary(circuit: &qcir::circuit::Circuit) -> Matrix {
    assert!(
        circuit.is_unitary_only(),
        "circuit_unitary requires a measurement-free circuit"
    );
    let n = circuit.num_qubits();
    assert!(n <= 12, "unitary extraction capped at 12 qubits");
    let dim = 1 << n;
    let mut u = Matrix::zeros(dim);
    for col in 0..dim {
        let mut sv = StateVector::basis(n, col);
        for op in circuit.ops() {
            if let qcir::circuit::Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        for row in 0..dim {
            u[(row, col)] = sv.amps[row];
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_is_normalized() {
        let sv = StateVector::zero(3);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(sv.amplitudes()[0], C64::ONE);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut sv = StateVector::zero(2);
        sv.apply_gate(Gate::X, &[1]);
        assert!(sv.amplitudes()[0b10].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn bell_state_probabilities() {
        let mut sv = StateVector::zero(2);
        sv.apply_gate(Gate::H, &[0]);
        sv.apply_gate(Gate::CX, &[0, 1]);
        let p = sv.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01].abs() < 1e-12);
        assert!(p[0b10].abs() < 1e-12);
    }

    #[test]
    fn cx_control_order_matters() {
        // Control qubit 1 (|0>), target 0: no flip.
        let mut sv = StateVector::zero(2);
        sv.apply_gate(Gate::X, &[0]); // |01> (qubit0 = 1)
        sv.apply_gate(Gate::CX, &[0, 1]); // control=qubit0 set -> flips qubit1
        assert!(sv.amplitudes()[0b11].approx_eq(C64::ONE, 1e-12));
        let mut sv2 = StateVector::zero(2);
        sv2.apply_gate(Gate::X, &[0]);
        sv2.apply_gate(Gate::CX, &[1, 0]); // control=qubit1 clear -> no-op
        assert!(sv2.amplitudes()[0b01].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn ccx_truth_table() {
        for input in 0..8usize {
            let mut sv = StateVector::basis(3, input);
            sv.apply_gate(Gate::CCX, &[0, 1, 2]);
            let expected = if input & 0b011 == 0b011 {
                input ^ 0b100
            } else {
                input
            };
            assert!(
                sv.amplitudes()[expected].approx_eq(C64::ONE, 1e-12),
                "input {input}"
            );
        }
    }

    #[test]
    fn measure_collapses() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sv = StateVector::zero(2);
        sv.apply_gate(Gate::H, &[0]);
        sv.apply_gate(Gate::CX, &[0, 1]);
        let m0 = sv.measure(0, &mut rng);
        let m1 = sv.measure(1, &mut rng);
        assert_eq!(m0, m1, "bell state measurements must correlate");
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prob_one_after_h() {
        let mut sv = StateVector::zero(1);
        sv.apply_gate(Gate::H, &[0]);
        assert!((sv.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sv = StateVector::zero(1);
        sv.apply_gate(Gate::X, &[0]);
        sv.reset(0, &mut rng);
        assert!(sv.amplitudes()[0].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut a = StateVector::zero(2);
        a.apply_gate(Gate::H, &[0]);
        let b = a.clone();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::basis(1, 0);
        let b = StateVector::basis(1, 1);
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut sv = StateVector::zero(4);
        let gates = [
            (Gate::H, vec![0]),
            (Gate::T, vec![1]),
            (Gate::CX, vec![0, 2]),
            (Gate::RZ(0.7), vec![3]),
            (Gate::CCX, vec![0, 1, 3]),
            (Gate::SWAP, vec![2, 3]),
            (Gate::U(0.3, 1.1, -0.4), vec![1]),
        ];
        for (g, qs) in gates {
            sv.apply_gate(g, &qs);
        }
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut sv = StateVector::basis(2, 0b01);
        sv.apply_gate(Gate::SWAP, &[0, 1]);
        assert!(sv.amplitudes()[0b10].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn unitary_of_bell_preparation() {
        let mut qc = Circuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let u = circuit_unitary(&qc);
        assert!(u.is_unitary(1e-10));
        // Column 0 (input |00>) is the Bell state.
        assert!((u.get(0b00, 0).abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((u.get(0b11, 0).abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn every_gate_roundtrips_with_its_inverse() {
        // Start from a non-trivial product state so phases matter, apply each
        // gate followed by its inverse, and require the state back exactly.
        let gates: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::X, vec![1]),
            (Gate::Y, vec![2]),
            (Gate::Z, vec![0]),
            (Gate::S, vec![1]),
            (Gate::Sdg, vec![2]),
            (Gate::T, vec![0]),
            (Gate::Tdg, vec![1]),
            (Gate::SX, vec![2]),
            (Gate::RX(0.83), vec![0]),
            (Gate::RY(-1.2), vec![1]),
            (Gate::RZ(2.9), vec![2]),
            (Gate::P(0.4), vec![0]),
            (Gate::U(0.3, -0.8, 1.7), vec![1]),
            (Gate::CX, vec![0, 2]),
            (Gate::CY, vec![2, 1]),
            (Gate::CZ, vec![1, 0]),
            (Gate::CH, vec![0, 1]),
            (Gate::SWAP, vec![1, 2]),
            (Gate::CRZ(0.6), vec![2, 0]),
            (Gate::CP(-0.9), vec![0, 1]),
            (Gate::CCX, vec![0, 1, 2]),
            (Gate::CSWAP, vec![2, 0, 1]),
        ];
        for (gate, qubits) in gates {
            let mut sv = StateVector::zero(3);
            for q in 0..3 {
                sv.apply_gate(Gate::H, &[q]);
                sv.apply_gate(Gate::T, &[q]);
            }
            let before = sv.clone();
            sv.apply_gate(gate, &qubits);
            sv.apply_gate(gate.inverse(), &qubits);
            assert!(
                (sv.fidelity(&before) - 1.0).abs() < 1e-10,
                "{gate:?} on {qubits:?} did not roundtrip"
            );
            assert!((sv.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn apply_matrix_is_big_endian_over_operands() {
        // X ⊗ I applied to qubits [0, 1]: operand 0 is the matrix MSB, so
        // the X must act on qubit 0 (bit 0 of the little-endian state index).
        let x = Gate::X.matrix();
        let id = qcir::math::Matrix::identity(2);
        let xi = x.kron(&id);
        let mut sv = StateVector::zero(2);
        sv.apply_matrix(&xi, &[0, 1]);
        assert!(sv.amplitudes()[0b01].approx_eq(C64::ONE, 1e-12));
        // Same matrix on reversed operands flips qubit 1 instead.
        let mut sv = StateVector::zero(2);
        sv.apply_matrix(&xi, &[1, 0]);
        assert!(sv.amplitudes()[0b10].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn apply_gate_agrees_with_dense_unitary() {
        // Evolving |basis> through the circuit must match the column of the
        // extracted dense unitary for every basis state.
        let mut qc = Circuit::new(3, 0);
        qc.h(0).cx(0, 1).t(1).swap(1, 2).cz(0, 2);
        let u = circuit_unitary(&qc);
        for col in 0..8 {
            let mut sv = StateVector::basis(3, col);
            for op in qc.ops() {
                if let qcir::circuit::Op::Gate { gate, qubits } = op {
                    sv.apply_gate(*gate, qubits);
                }
            }
            for row in 0..8 {
                assert!(
                    sv.amplitudes()[row].approx_eq(u.get(row, col), 1e-10),
                    "mismatch at ({row}, {col})"
                );
            }
        }
    }

    #[test]
    fn long_random_gate_sequence_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut sv = StateVector::zero(5);
        for _ in 0..200 {
            match rng.gen_range(0..6) {
                0 => sv.apply_gate(Gate::H, &[rng.gen_range(0..5)]),
                1 => sv.apply_gate(Gate::T, &[rng.gen_range(0..5)]),
                2 => sv.apply_gate(Gate::RY(rng.gen_range(-3.0..3.0)), &[rng.gen_range(0..5)]),
                3 => {
                    let a = rng.gen_range(0..5);
                    let b = (a + rng.gen_range(1..5)) % 5;
                    sv.apply_gate(Gate::CX, &[a, b]);
                }
                4 => {
                    let a = rng.gen_range(0..5);
                    let b = (a + rng.gen_range(1..5)) % 5;
                    sv.apply_gate(Gate::CP(rng.gen_range(-3.0..3.0)), &[a, b]);
                }
                _ => sv.apply_gate(Gate::SX, &[rng.gen_range(0..5)]),
            }
        }
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn global_phase_does_not_change_fidelity() {
        let mut a = StateVector::zero(1);
        a.apply_gate(Gate::X, &[0]);
        let mut b = a.clone();
        b.apply_gate(Gate::P(1.3), &[0]); // phases the |1> component only
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_respects_support() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut sv = StateVector::zero(2);
        sv.apply_gate(Gate::H, &[0]);
        sv.apply_gate(Gate::CX, &[0, 1]);
        let mut seen = [0usize; 4];
        for _ in 0..2000 {
            seen[sv.sample(&mut rng)] += 1;
        }
        assert_eq!(seen[0b01], 0);
        assert_eq!(seen[0b10], 0);
        let frac = seen[0b00] as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "bell sampling skewed: {frac}");
    }

    #[test]
    fn measurement_statistics_on_plus_state() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut ones = 0;
        for _ in 0..2000 {
            let mut sv = StateVector::zero(1);
            sv.apply_gate(Gate::H, &[0]);
            if sv.measure(0, &mut rng) {
                ones += 1;
            }
        }
        let frac = ones as f64 / 2000.0;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "plus-state measurement skewed: {frac}"
        );
    }

    #[test]
    fn collapse_renormalizes_partial_superposition() {
        let mut sv = StateVector::zero(2);
        sv.apply_gate(Gate::H, &[0]);
        sv.apply_gate(Gate::H, &[1]);
        sv.collapse(0, true);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((sv.prob_one(0) - 1.0).abs() < 1e-12);
        assert!((sv.prob_one(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "basis index out of range")]
    fn basis_checks_range() {
        StateVector::basis(2, 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn apply_gate_checks_arity() {
        let mut sv = StateVector::zero(2);
        sv.apply_gate(Gate::CX, &[0]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn apply_gate_checks_duplicates() {
        let mut sv = StateVector::zero(2);
        sv.apply_gate(Gate::CX, &[1, 1]);
    }
}
