//! Measurement-outcome distributions.

use std::collections::BTreeMap;
use std::fmt;

/// Shot counts over classical-register outcomes.
///
/// Outcomes are stored as integers with classical bit `i` in bit `i`;
/// [`Counts::bitstring`] renders them most-significant-bit first, matching
/// Qiskit's display convention.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_clbits: usize,
    shots: u64,
    table: BTreeMap<u64, u64>,
}

impl Counts {
    /// Creates an empty counts table for `num_clbits` classical bits.
    pub fn new(num_clbits: usize) -> Self {
        Counts {
            num_clbits,
            shots: 0,
            table: BTreeMap::new(),
        }
    }

    /// Records one shot with the given outcome word.
    pub fn record(&mut self, outcome: u64) {
        *self.table.entry(outcome).or_insert(0) += 1;
        self.shots += 1;
    }

    /// Total shots recorded.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Number of classical bits per outcome.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Number of distinct outcomes observed.
    pub fn distinct_outcomes(&self) -> usize {
        self.table.len()
    }

    /// Raw count for an outcome word.
    pub fn count(&self, outcome: u64) -> u64 {
        self.table.get(&outcome).copied().unwrap_or(0)
    }

    /// Empirical probability of an outcome word.
    pub fn probability(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.shots as f64
        }
    }

    /// Empirical probability of a bitstring like `"011"` (MSB-first).
    ///
    /// # Panics
    ///
    /// Panics when the string length differs from `num_clbits` or contains
    /// non-binary characters.
    pub fn probability_of_str(&self, bits: &str) -> f64 {
        self.probability(parse_bitstring(bits, self.num_clbits))
    }

    /// The most frequent outcome, or `None` when empty.
    pub fn most_likely(&self) -> Option<u64> {
        self.table
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&outcome, _)| outcome)
    }

    /// Renders an outcome word as an MSB-first bitstring.
    pub fn bitstring(&self, outcome: u64) -> String {
        render_bitstring(outcome, self.num_clbits)
    }

    /// Iterates over `(outcome, count)` pairs in outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.table.iter().map(|(&o, &c)| (o, c))
    }

    /// Merges another counts table into this one (outcome-wise addition).
    ///
    /// Merging is commutative and associative, which is what lets the
    /// parallel executor's workers accumulate seed-derived chunks in any
    /// order and still produce results bit-identical to a single-threaded
    /// run.
    ///
    /// # Panics
    ///
    /// Panics when the classical-register widths differ.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(
            self.num_clbits, other.num_clbits,
            "cannot merge counts over different classical registers"
        );
        for (outcome, count) in other.iter() {
            *self.table.entry(outcome).or_insert(0) += count;
        }
        self.shots += other.shots;
    }

    /// Converts to a normalized probability map.
    pub fn to_distribution(&self) -> Distribution {
        let mut d = Distribution::new(self.num_clbits);
        if self.shots == 0 {
            return d;
        }
        for (&outcome, &count) in &self.table {
            d.set(outcome, count as f64 / self.shots as f64);
        }
        d
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} shots over {} bit(s):", self.shots, self.num_clbits)?;
        for (&outcome, &count) in &self.table {
            writeln!(
                f,
                "  {} : {:>8}  ({:.4})",
                self.bitstring(outcome),
                count,
                count as f64 / self.shots.max(1) as f64
            )?;
        }
        Ok(())
    }
}

impl FromIterator<u64> for Counts {
    /// Collects outcome words; `num_clbits` is set to the minimum width that
    /// holds the largest outcome.
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut table: BTreeMap<u64, u64> = BTreeMap::new();
        let mut shots = 0;
        let mut max = 0u64;
        for outcome in iter {
            *table.entry(outcome).or_insert(0) += 1;
            shots += 1;
            max = max.max(outcome);
        }
        let num_clbits = if max == 0 {
            1
        } else {
            (64 - max.leading_zeros()) as usize
        };
        Counts {
            num_clbits,
            shots,
            table,
        }
    }
}

/// A normalized probability distribution over outcome words.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Distribution {
    num_clbits: usize,
    probs: BTreeMap<u64, f64>,
}

impl Distribution {
    /// An empty distribution over `num_clbits` bits.
    pub fn new(num_clbits: usize) -> Self {
        Distribution {
            num_clbits,
            probs: BTreeMap::new(),
        }
    }

    /// Builds a distribution from state-vector probabilities (index = word).
    pub fn from_probabilities(num_clbits: usize, probs: &[f64]) -> Self {
        let mut d = Distribution::new(num_clbits);
        for (i, &p) in probs.iter().enumerate() {
            if p > 0.0 {
                d.set(i as u64, p);
            }
        }
        d
    }

    /// Sets the probability of an outcome.
    pub fn set(&mut self, outcome: u64, p: f64) {
        if p > 0.0 {
            self.probs.insert(outcome, p);
        } else {
            self.probs.remove(&outcome);
        }
    }

    /// Probability of an outcome (0 when absent).
    pub fn get(&self, outcome: u64) -> f64 {
        self.probs.get(&outcome).copied().unwrap_or(0.0)
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Iterates over `(outcome, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.probs.iter().map(|(&o, &p)| (o, p))
    }

    /// Total probability mass (should be ~1 for complete distributions).
    pub fn total_mass(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Total-variation distance to another distribution.
    pub fn tvd(&self, other: &Distribution) -> f64 {
        let mut keys: Vec<u64> = self.probs.keys().copied().collect();
        keys.extend(other.probs.keys().copied());
        keys.sort_unstable();
        keys.dedup();
        0.5 * keys
            .into_iter()
            .map(|k| (self.get(k) - other.get(k)).abs())
            .sum::<f64>()
    }

    /// Hellinger distance to another distribution.
    pub fn hellinger(&self, other: &Distribution) -> f64 {
        let mut keys: Vec<u64> = self.probs.keys().copied().collect();
        keys.extend(other.probs.keys().copied());
        keys.sort_unstable();
        keys.dedup();
        let bc: f64 = keys
            .into_iter()
            .map(|k| (self.get(k) * other.get(k)).sqrt())
            .sum();
        (1.0 - bc.min(1.0)).sqrt()
    }
}

/// Parses an MSB-first bitstring into an outcome word.
///
/// # Panics
///
/// Panics when `bits.len() != width` or a character is not `0`/`1`.
pub fn parse_bitstring(bits: &str, width: usize) -> u64 {
    assert_eq!(bits.len(), width, "bitstring width mismatch");
    let mut word = 0u64;
    for (i, ch) in bits.chars().enumerate() {
        let bit = match ch {
            '0' => 0u64,
            '1' => 1u64,
            other => panic!("invalid bitstring character `{other}`"),
        };
        // MSB-first: first character is the highest classical bit.
        word |= bit << (width - 1 - i);
    }
    word
}

/// Renders an outcome word as an MSB-first bitstring of `width` characters.
pub fn render_bitstring(outcome: u64, width: usize) -> String {
    (0..width)
        .rev()
        .map(|i| if (outcome >> i) & 1 == 1 { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(2);
        c.record(0b00);
        c.record(0b11);
        c.record(0b11);
        assert_eq!(c.shots(), 3);
        assert_eq!(c.count(0b11), 2);
        assert_eq!(c.most_likely(), Some(0b11));
        assert!((c.probability(0b00) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_outcome_wise() {
        let mut a = Counts::new(2);
        a.record(0b00);
        a.record(0b11);
        let mut b = Counts::new(2);
        b.record(0b11);
        b.record(0b01);
        a.merge(&b);
        assert_eq!(a.shots(), 4);
        assert_eq!(a.count(0b11), 2);
        assert_eq!(a.count(0b01), 1);
    }

    #[test]
    #[should_panic(expected = "different classical registers")]
    fn merge_checks_widths() {
        let mut a = Counts::new(2);
        a.merge(&Counts::new(3));
    }

    #[test]
    fn bitstring_round_trip() {
        assert_eq!(parse_bitstring("011", 3), 0b011);
        assert_eq!(render_bitstring(0b011, 3), "011");
        assert_eq!(parse_bitstring("100", 3), 0b100);
        assert_eq!(render_bitstring(5, 4), "0101");
    }

    #[test]
    fn probability_of_str_uses_msb_first() {
        let mut c = Counts::new(3);
        c.record(0b001); // clbit 0 = 1
        assert!((c.probability_of_str("001") - 1.0).abs() < 1e-12);
        assert_eq!(c.probability_of_str("100"), 0.0);
    }

    #[test]
    fn tvd_of_identical_is_zero() {
        let mut a = Distribution::new(2);
        a.set(0, 0.5);
        a.set(3, 0.5);
        assert!(a.tvd(&a.clone()) < 1e-12);
    }

    #[test]
    fn tvd_of_disjoint_is_one() {
        let mut a = Distribution::new(1);
        a.set(0, 1.0);
        let mut b = Distribution::new(1);
        b.set(1, 1.0);
        assert!((a.tvd(&b) - 1.0).abs() < 1e-12);
        assert!((a.hellinger(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_to_distribution_normalizes() {
        let mut c = Counts::new(1);
        for _ in 0..3 {
            c.record(0);
        }
        c.record(1);
        let d = c.to_distribution();
        assert!((d.get(0) - 0.75).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_infers_width() {
        let c: Counts = vec![0u64, 5, 2].into_iter().collect();
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(c.shots(), 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn parse_checks_width() {
        parse_bitstring("01", 3);
    }
}
