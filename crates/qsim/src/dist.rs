//! Measurement-outcome distributions.

use crate::word::OutcomeWord;
use std::collections::BTreeMap;
use std::fmt;

/// Shot counts over classical-register outcomes.
///
/// Outcomes are [`OutcomeWord`]s — arbitrary-width packed registers with
/// classical bit `i` at bit `i` (bit `i % 64` of little-endian 64-bit word
/// `i / 64`). [`Counts::bitstring`] renders them most-significant-bit
/// first, matching Qiskit's display convention, so classical bit 0 is the
/// *rightmost* character whatever the register width.
///
/// # The ≤ 64-bit fast path
///
/// Registers of up to 64 classical bits stay on the [`OutcomeWord`] inline
/// representation: recording a shot through [`Counts::record`] or
/// [`Counts::record_word`] performs no heap allocation beyond the counts
/// table's own node for a *newly seen* outcome (pinned by the
/// counting-allocator test `crates/qsim/tests/alloc_counts.rs`). Wider
/// registers — distance-7 surface-code memory needs 97+ bits — spill into
/// multi-word outcomes transparently; every `Counts` operation, including
/// the executor's deterministic parallel chunk [`Counts::merge`], is
/// width-agnostic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_clbits: usize,
    shots: u64,
    table: BTreeMap<OutcomeWord, u64>,
}

impl Counts {
    /// Creates an empty counts table for `num_clbits` classical bits.
    pub fn new(num_clbits: usize) -> Self {
        Counts {
            num_clbits,
            shots: 0,
            table: BTreeMap::new(),
        }
    }

    /// Records one shot with the given outcome word.
    pub fn record(&mut self, outcome: impl Into<OutcomeWord>) {
        *self.table.entry(outcome.into()).or_insert(0) += 1;
        self.shots += 1;
    }

    /// Records one shot from a borrowed outcome word, cloning only when the
    /// outcome has not been seen before — the shot-loop hot path, letting
    /// callers reuse one scratch word across a whole trajectory chunk.
    pub fn record_word(&mut self, outcome: &OutcomeWord) {
        match self.table.get_mut(outcome) {
            Some(count) => *count += 1,
            None => {
                self.table.insert(outcome.clone(), 1);
            }
        }
        self.shots += 1;
    }

    /// Total shots recorded.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Number of classical bits per outcome.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Number of distinct outcomes observed.
    pub fn distinct_outcomes(&self) -> usize {
        self.table.len()
    }

    /// Raw count for an outcome word.
    pub fn count(&self, outcome: impl Into<OutcomeWord>) -> u64 {
        self.count_word(&outcome.into())
    }

    /// Raw count for a borrowed outcome word.
    pub fn count_word(&self, outcome: &OutcomeWord) -> u64 {
        self.table.get(outcome).copied().unwrap_or(0)
    }

    /// Empirical probability of an outcome word.
    pub fn probability(&self, outcome: impl Into<OutcomeWord>) -> f64 {
        self.probability_word(&outcome.into())
    }

    /// Empirical probability of a borrowed outcome word.
    pub fn probability_word(&self, outcome: &OutcomeWord) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count_word(outcome) as f64 / self.shots as f64
        }
    }

    /// Empirical probability of a bitstring like `"011"` (MSB-first).
    ///
    /// # Panics
    ///
    /// Panics when the string length differs from `num_clbits` or contains
    /// non-binary characters.
    pub fn probability_of_str(&self, bits: &str) -> f64 {
        self.probability_word(&parse_bitstring(bits, self.num_clbits))
    }

    /// The most frequent outcome, or `None` when empty.
    pub fn most_likely(&self) -> Option<&OutcomeWord> {
        self.table
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(outcome, _)| outcome)
    }

    /// Renders an outcome word as an MSB-first bitstring of `num_clbits`
    /// characters.
    pub fn bitstring(&self, outcome: &OutcomeWord) -> String {
        outcome.bitstring(self.num_clbits)
    }

    /// Iterates over `(outcome, count)` pairs in outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (&OutcomeWord, u64)> + '_ {
        self.table.iter().map(|(o, &c)| (o, c))
    }

    /// Merges another counts table into this one (outcome-wise addition).
    ///
    /// Merging is commutative and associative, which is what lets the
    /// parallel executor's workers accumulate seed-derived chunks in any
    /// order and still produce results bit-identical to a single-threaded
    /// run — for registers of any width.
    ///
    /// # Panics
    ///
    /// Panics when the classical-register widths differ.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(
            self.num_clbits, other.num_clbits,
            "cannot merge counts over different classical registers"
        );
        for (outcome, count) in other.iter() {
            match self.table.get_mut(outcome) {
                Some(existing) => *existing += count,
                None => {
                    self.table.insert(outcome.clone(), count);
                }
            }
        }
        self.shots += other.shots;
    }

    /// Converts to a normalized probability map.
    pub fn to_distribution(&self) -> Distribution {
        let mut d = Distribution::new(self.num_clbits);
        if self.shots == 0 {
            return d;
        }
        for (outcome, &count) in &self.table {
            d.set(outcome.clone(), count as f64 / self.shots as f64);
        }
        d
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} shots over {} bit(s):", self.shots, self.num_clbits)?;
        for (outcome, &count) in &self.table {
            writeln!(
                f,
                "  {} : {:>8}  ({:.4})",
                self.bitstring(outcome),
                count,
                count as f64 / self.shots.max(1) as f64
            )?;
        }
        Ok(())
    }
}

impl FromIterator<u64> for Counts {
    /// Collects one-word outcomes; `num_clbits` is set to the minimum width
    /// that holds the largest outcome.
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        iter.into_iter().map(OutcomeWord::from).collect()
    }
}

impl FromIterator<OutcomeWord> for Counts {
    /// Collects outcome words; `num_clbits` is set to the minimum width
    /// that holds the largest outcome.
    fn from_iter<T: IntoIterator<Item = OutcomeWord>>(iter: T) -> Self {
        let mut table: BTreeMap<OutcomeWord, u64> = BTreeMap::new();
        let mut shots = 0;
        let mut width = 1usize;
        for outcome in iter {
            width = width.max(outcome.bit_len());
            *table.entry(outcome).or_insert(0) += 1;
            shots += 1;
        }
        Counts {
            num_clbits: width,
            shots,
            table,
        }
    }
}

/// A normalized probability distribution over outcome words.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Distribution {
    num_clbits: usize,
    probs: BTreeMap<OutcomeWord, f64>,
}

impl Distribution {
    /// An empty distribution over `num_clbits` bits.
    pub fn new(num_clbits: usize) -> Self {
        Distribution {
            num_clbits,
            probs: BTreeMap::new(),
        }
    }

    /// Builds a distribution from state-vector probabilities (index = word).
    pub fn from_probabilities(num_clbits: usize, probs: &[f64]) -> Self {
        let mut d = Distribution::new(num_clbits);
        for (i, &p) in probs.iter().enumerate() {
            if p > 0.0 {
                d.set(i as u64, p);
            }
        }
        d
    }

    /// Sets the probability of an outcome.
    pub fn set(&mut self, outcome: impl Into<OutcomeWord>, p: f64) {
        let outcome = outcome.into();
        if p > 0.0 {
            self.probs.insert(outcome, p);
        } else {
            self.probs.remove(&outcome);
        }
    }

    /// Probability of an outcome (0 when absent).
    pub fn get(&self, outcome: impl Into<OutcomeWord>) -> f64 {
        self.get_word(&outcome.into())
    }

    /// Probability of a borrowed outcome word (0 when absent).
    pub fn get_word(&self, outcome: &OutcomeWord) -> f64 {
        self.probs.get(outcome).copied().unwrap_or(0.0)
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Iterates over `(outcome, probability)` pairs in outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (&OutcomeWord, f64)> + '_ {
        self.probs.iter().map(|(o, &p)| (o, p))
    }

    /// Total probability mass (should be ~1 for complete distributions).
    pub fn total_mass(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Folds `f` over the union of both distributions' outcomes with each
    /// side's probability (0 where absent), by merge-walking the two sorted
    /// tables — no key collection or cloning.
    fn fold_joint(&self, other: &Distribution, mut f: impl FnMut(f64, f64)) {
        let mut a = self.probs.iter().peekable();
        let mut b = other.probs.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&(ka, &pa)), Some(&(kb, &pb))) => match ka.cmp(kb) {
                    std::cmp::Ordering::Less => {
                        f(pa, 0.0);
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        f(0.0, pb);
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        f(pa, pb);
                        a.next();
                        b.next();
                    }
                },
                (Some(&(_, &pa)), None) => {
                    f(pa, 0.0);
                    a.next();
                }
                (None, Some(&(_, &pb))) => {
                    f(0.0, pb);
                    b.next();
                }
                (None, None) => break,
            }
        }
    }

    /// Total-variation distance to another distribution.
    pub fn tvd(&self, other: &Distribution) -> f64 {
        let mut sum = 0.0;
        self.fold_joint(other, |pa, pb| sum += (pa - pb).abs());
        0.5 * sum
    }

    /// Hellinger distance to another distribution.
    pub fn hellinger(&self, other: &Distribution) -> f64 {
        let mut bc = 0.0;
        self.fold_joint(other, |pa, pb| bc += (pa * pb).sqrt());
        (1.0 - bc.min(1.0)).sqrt()
    }
}

/// Parses an MSB-first bitstring into an outcome word.
///
/// # Panics
///
/// Panics when `bits.len() != width` or a character is not `0`/`1`.
pub fn parse_bitstring(bits: &str, width: usize) -> OutcomeWord {
    assert_eq!(bits.len(), width, "bitstring width mismatch");
    OutcomeWord::parse(bits)
}

/// Renders an outcome word as an MSB-first bitstring of `width` characters.
pub fn render_bitstring(outcome: &OutcomeWord, width: usize) -> String {
    outcome.bitstring(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(2);
        c.record(0b00u64);
        c.record(0b11u64);
        c.record(0b11u64);
        assert_eq!(c.shots(), 3);
        assert_eq!(c.count(0b11u64), 2);
        assert_eq!(c.most_likely(), Some(&OutcomeWord::from(0b11u64)));
        assert!((c.probability(0b00u64) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn record_word_reuses_a_scratch_word() {
        let mut c = Counts::new(70);
        let mut scratch = OutcomeWord::zero();
        for shot in 0..6 {
            scratch.clear();
            scratch.set_bit(shot % 2 * 69, true);
            c.record_word(&scratch);
        }
        assert_eq!(c.shots(), 6);
        assert_eq!(c.count(1u64), 3);
        let mut wide = OutcomeWord::zero();
        wide.set_bit(69, true);
        assert_eq!(c.count_word(&wide), 3);
    }

    #[test]
    fn merge_adds_outcome_wise() {
        let mut a = Counts::new(2);
        a.record(0b00u64);
        a.record(0b11u64);
        let mut b = Counts::new(2);
        b.record(0b11u64);
        b.record(0b01u64);
        a.merge(&b);
        assert_eq!(a.shots(), 4);
        assert_eq!(a.count(0b11u64), 2);
        assert_eq!(a.count(0b01u64), 1);
    }

    #[test]
    fn merge_handles_multi_word_outcomes() {
        let mut a = Counts::new(130);
        let mut b = Counts::new(130);
        let wide = OutcomeWord::from_words(&[1, 0, 3]);
        a.record(wide.clone());
        a.record(7u64);
        b.record(wide.clone());
        a.merge(&b);
        assert_eq!(a.shots(), 3);
        assert_eq!(a.count_word(&wide), 2);
        assert_eq!(a.count(7u64), 1);
    }

    #[test]
    #[should_panic(expected = "different classical registers")]
    fn merge_checks_widths() {
        let mut a = Counts::new(2);
        a.merge(&Counts::new(3));
    }

    #[test]
    fn bitstring_round_trip() {
        assert_eq!(parse_bitstring("011", 3), OutcomeWord::from(0b011u64));
        assert_eq!(render_bitstring(&OutcomeWord::from(0b011u64), 3), "011");
        assert_eq!(parse_bitstring("100", 3), OutcomeWord::from(0b100u64));
        assert_eq!(render_bitstring(&OutcomeWord::from(5u64), 4), "0101");
    }

    #[test]
    fn probability_of_str_uses_msb_first() {
        let mut c = Counts::new(3);
        c.record(0b001u64); // clbit 0 = 1
        assert!((c.probability_of_str("001") - 1.0).abs() < 1e-12);
        assert_eq!(c.probability_of_str("100"), 0.0);
    }

    #[test]
    fn tvd_of_identical_is_zero() {
        let mut a = Distribution::new(2);
        a.set(0u64, 0.5);
        a.set(3u64, 0.5);
        assert!(a.tvd(&a.clone()) < 1e-12);
    }

    #[test]
    fn tvd_of_disjoint_is_one() {
        let mut a = Distribution::new(1);
        a.set(0u64, 1.0);
        let mut b = Distribution::new(1);
        b.set(1u64, 1.0);
        assert!((a.tvd(&b) - 1.0).abs() < 1e-12);
        assert!((a.hellinger(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distances_span_the_64_bit_boundary() {
        // One outcome inline, one spilled: the merge-walk must interleave
        // them in numeric order and see all four mass points.
        let mut wide = OutcomeWord::zero();
        wide.set_bit(64, true);
        let mut a = Distribution::new(65);
        a.set(0u64, 0.5);
        a.set(wide.clone(), 0.5);
        let mut b = Distribution::new(65);
        b.set(1u64, 0.5);
        b.set(wide, 0.5);
        assert!((a.tvd(&b) - 0.5).abs() < 1e-12);
        assert!(a.tvd(&a.clone()) < 1e-12);
    }

    #[test]
    fn counts_to_distribution_normalizes() {
        let mut c = Counts::new(1);
        for _ in 0..3 {
            c.record(0u64);
        }
        c.record(1u64);
        let d = c.to_distribution();
        assert!((d.get(0u64) - 0.75).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_infers_width() {
        let c: Counts = vec![0u64, 5, 2].into_iter().collect();
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(c.shots(), 3);
        let wide: Counts = vec![OutcomeWord::from_words(&[0, 1])].into_iter().collect();
        assert_eq!(wide.num_clbits(), 65);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn parse_checks_width() {
        parse_bitstring("01", 3);
    }
}
