//! The typed job vocabulary shared by in-process batch execution, the
//! `qugen-serve` daemon, and (eventually) multi-process shard coordinators.
//!
//! A [`JobSpec`] replaces the ad-hoc `(&Circuit, u64, u64)` tuples the
//! batch API grew up on: one value that names everything a simulation job
//! is — the circuit, the shot budget, the seed, and (optionally) a backend
//! override and an MPS truncation budget. [`JobStatus`] and [`JobResult`]
//! complete the vocabulary for services that track jobs through a queue.
//!
//! # Determinism contract
//!
//! A job is a *pure function of its spec*: running the same [`JobSpec`]
//! (same circuit content, shots, seed, effective backend and effective
//! truncation budget) produces bit-identical [`Counts`] on every run, for
//! every executor worker-thread count, on every host — shot chunks are
//! seeded from `(seed, chunk index)` alone and merged by commutative
//! outcome-wise addition (see [`crate::exec`]). This is what makes result
//! caching by [`JobKey`] sound, and what lets a service or a shard
//! coordinator replay, dedupe, or relocate jobs freely.

use crate::backend::{BackendChoice, BackendKind};
use crate::dist::Counts;
use crate::plan;
use qcir::circuit::Circuit;
use std::fmt;
use std::sync::Arc;

/// One simulation job: a circuit plus everything needed to reproduce its
/// counts exactly (see the module docs for the determinism contract).
///
/// The circuit is held behind an [`Arc`] so a spec is cheap to clone into
/// queues, worker threads and job tables without copying the op list.
/// `backend` and `budget` are *overrides*: `None` inherits the executing
/// [`crate::exec::Executor`]'s configured choice and truncation budget, so
/// library callers that configure the executor once keep their behavior,
/// while services can pin per-job values.
#[derive(Debug, Clone)]
pub struct JobSpec {
    circuit: Arc<Circuit>,
    shots: u64,
    seed: u64,
    backend: Option<BackendChoice>,
    budget: Option<f64>,
}

impl JobSpec {
    /// A job running `circuit` for `shots` shots from `seed`, inheriting
    /// the executor's backend choice and truncation budget.
    pub fn new(circuit: impl Into<Arc<Circuit>>, shots: u64, seed: u64) -> Self {
        JobSpec {
            circuit: circuit.into(),
            shots,
            seed,
            backend: None,
            budget: None,
        }
    }

    /// Pins the job to a backend choice, overriding the executor's.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Pins the job's MPS truncation budget, overriding the executor's.
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The circuit to simulate.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// Shots to run.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The deterministic base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The backend override, if any.
    pub fn backend(&self) -> Option<BackendChoice> {
        self.backend
    }

    /// The truncation-budget override, if any.
    pub fn budget(&self) -> Option<f64> {
        self.budget
    }

    /// The backend choice this job runs under, given an executor default.
    pub fn effective_backend(&self, default: BackendChoice) -> BackendChoice {
        self.backend.unwrap_or(default)
    }

    /// The truncation budget this job runs under, given an executor
    /// default.
    pub fn effective_budget(&self, default: f64) -> f64 {
        self.budget.unwrap_or(default)
    }

    /// The job's cache identity under the given executor defaults: equal
    /// keys imply bit-identical counts (the determinism contract), so a
    /// result cache keyed on [`JobKey`] never has to re-execute a repeat.
    ///
    /// The circuit enters through its 128-bit structural fingerprint
    /// ([`crate::plan::fingerprint`]); the budget enters through its exact
    /// bit pattern so `0.01` and `0.010000001` are distinct keys.
    pub fn key(&self, default_backend: BackendChoice, default_budget: f64) -> JobKey {
        JobKey {
            fingerprint: plan::fingerprint(&self.circuit),
            shots: self.shots,
            seed: self.seed,
            backend: self.effective_backend(default_backend),
            budget_bits: self.effective_budget(default_budget).to_bits(),
        }
    }
}

/// The identity a job's counts depend on — and nothing more. See
/// [`JobSpec::key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// 128-bit structural fingerprint of the circuit
    /// ([`crate::plan::fingerprint`]).
    pub fingerprint: u128,
    /// Shots requested.
    pub shots: u64,
    /// Base seed.
    pub seed: u64,
    /// Effective backend choice the job resolves under.
    pub backend: BackendChoice,
    /// Effective truncation budget, as exact `f64` bits.
    pub budget_bits: u64,
}

/// Where a job is in its lifecycle (`queued → running → done | failed`).
///
/// A cache hit goes straight to `Done`; a submit-time refusal never enters
/// the table at all (the submission itself returns the typed error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted and waiting in the bounded work queue.
    Queued,
    /// Claimed by a worker; counts are being produced.
    Running,
    /// Finished successfully; a [`JobResult`] is available.
    Done,
    /// Finished with a typed [`crate::backend::SimError`] (e.g. an MPS
    /// truncation budget tripped at run time).
    Failed,
}

impl JobStatus {
    /// Stable machine-readable name (`queued|running|done|failed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A finished job's payload.
///
/// By the determinism contract (module docs), `counts` depends only on the
/// job's [`JobKey`] — which is why `cached` is an honest flag and not a
/// semantic difference: a cached result is bit-identical to re-executing.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The measurement counts.
    pub counts: Counts,
    /// The engine that (first) produced them.
    pub backend: BackendKind,
    /// `true` when served from a result cache instead of executed.
    pub cached: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendChoice;

    fn bell() -> Circuit {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        qc
    }

    #[test]
    fn key_depends_on_every_field_and_nothing_else() {
        let spec = JobSpec::new(bell(), 100, 7);
        let base = spec.key(BackendChoice::Auto, 0.01);
        // A structurally equal circuit in a different allocation: same key.
        let twin = JobSpec::new(bell(), 100, 7).key(BackendChoice::Auto, 0.01);
        assert_eq!(base, twin);
        // Every field perturbs the key.
        assert_ne!(
            base,
            JobSpec::new(bell(), 101, 7).key(BackendChoice::Auto, 0.01)
        );
        assert_ne!(
            base,
            JobSpec::new(bell(), 100, 8).key(BackendChoice::Auto, 0.01)
        );
        assert_ne!(base, spec.key(BackendChoice::Dense, 0.01));
        assert_ne!(base, spec.key(BackendChoice::Auto, 0.02));
        let mut other = bell();
        other.x(0);
        assert_ne!(
            base,
            JobSpec::new(other, 100, 7).key(BackendChoice::Auto, 0.01)
        );
    }

    #[test]
    fn overrides_beat_executor_defaults() {
        let spec = JobSpec::new(bell(), 10, 0)
            .with_backend(BackendChoice::Tableau)
            .with_budget(0.5);
        assert_eq!(
            spec.effective_backend(BackendChoice::Auto),
            BackendChoice::Tableau
        );
        assert_eq!(spec.effective_budget(0.01), 0.5);
        let plain = JobSpec::new(bell(), 10, 0);
        assert_eq!(
            plain.effective_backend(BackendChoice::Dense),
            BackendChoice::Dense
        );
        assert_eq!(plain.effective_budget(0.01), 0.01);
    }

    #[test]
    fn status_names_are_stable() {
        assert_eq!(JobStatus::Queued.as_str(), "queued");
        assert_eq!(JobStatus::Running.to_string(), "running");
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Done.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
    }
}
