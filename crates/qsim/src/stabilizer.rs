//! Aaronson–Gottesman CHP stabilizer tableau simulator.
//!
//! Simulates Clifford circuits (H, S, CX and Paulis) plus computational
//! basis measurement in `O(n^2)` per operation, which is what makes
//! distance-5/7 surface-code syndrome extraction tractable where the dense
//! simulator is not.
//!
//! Reference: S. Aaronson and D. Gottesman, "Improved simulation of
//! stabilizer circuits", Phys. Rev. A 70, 052328 (2004).

use crate::backend::SimError;
use crate::dist::Counts;
use crate::word::OutcomeWord;
use qcir::circuit::{Circuit, Op};
use qcir::gate::Gate;
use rand::Rng;

/// Stabilizer state of `n` qubits, represented as a tableau of `2n`
/// generators (destabilizers then stabilizers) plus one scratch row.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilizerSim {
    n: usize,
    words: usize,
    /// X bit-matrix: rows `0..2n+1`, columns packed into `words` u64s.
    xs: Vec<Vec<u64>>,
    /// Z bit-matrix.
    zs: Vec<Vec<u64>>,
    /// Phase bits (0 => +1, 1 => -1).
    rs: Vec<u8>,
}

impl StabilizerSim {
    /// The |0...0> state on `n` qubits.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        let rows = 2 * n + 1;
        let mut sim = StabilizerSim {
            n,
            words,
            xs: vec![vec![0u64; words]; rows],
            zs: vec![vec![0u64; words]; rows],
            rs: vec![0u8; rows],
        };
        for i in 0..n {
            sim.set_x(i, i, true); // destabilizer i = X_i
            sim.set_z(n + i, i, true); // stabilizer i = Z_i
        }
        sim
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Resets the tableau to |0…0> in place, reusing the allocation (the
    /// trajectory executor calls this once per shot).
    pub fn reinit(&mut self) {
        for row in 0..2 * self.n + 1 {
            self.xs[row].iter_mut().for_each(|w| *w = 0);
            self.zs[row].iter_mut().for_each(|w| *w = 0);
            self.rs[row] = 0;
        }
        for i in 0..self.n {
            self.set_x(i, i, true);
            self.set_z(self.n + i, i, true);
        }
    }

    #[inline]
    fn x(&self, row: usize, col: usize) -> bool {
        (self.xs[row][col / 64] >> (col % 64)) & 1 == 1
    }

    #[inline]
    fn z(&self, row: usize, col: usize) -> bool {
        (self.zs[row][col / 64] >> (col % 64)) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, row: usize, col: usize, v: bool) {
        let w = col / 64;
        let b = col % 64;
        if v {
            self.xs[row][w] |= 1 << b;
        } else {
            self.xs[row][w] &= !(1 << b);
        }
    }

    #[inline]
    fn set_z(&mut self, row: usize, col: usize, v: bool) {
        let w = col / 64;
        let b = col % 64;
        if v {
            self.zs[row][w] |= 1 << b;
        } else {
            self.zs[row][w] &= !(1 << b);
        }
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for row in 0..2 * self.n {
            let x = self.x(row, q);
            let z = self.z(row, q);
            if x && z {
                self.rs[row] ^= 1;
            }
            self.set_x(row, q, z);
            self.set_z(row, q, x);
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        for row in 0..2 * self.n {
            let x = self.x(row, q);
            let z = self.z(row, q);
            if x && z {
                self.rs[row] ^= 1;
            }
            self.set_z(row, q, z ^ x);
        }
    }

    /// S-dagger on `q` (three applications of S).
    pub fn sdg(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// CNOT with control `a`, target `b`.
    ///
    /// # Panics
    ///
    /// Panics when `a == b`.
    pub fn cx(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "cx control and target must differ");
        for row in 0..2 * self.n {
            let xa = self.x(row, a);
            let xb = self.x(row, b);
            let za = self.z(row, a);
            let zb = self.z(row, b);
            if xa && zb && (xb == za) {
                self.rs[row] ^= 1;
            }
            self.set_x(row, b, xb ^ xa);
            self.set_z(row, a, za ^ zb);
        }
    }

    /// Controlled-Z via `H(b); CX(a,b); H(b)`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// Swap via three CNOTs.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    /// Pauli-X on `q`.
    pub fn x_gate(&mut self, q: usize) {
        for row in 0..2 * self.n {
            if self.z(row, q) {
                self.rs[row] ^= 1;
            }
        }
    }

    /// Pauli-Z on `q`.
    pub fn z_gate(&mut self, q: usize) {
        for row in 0..2 * self.n {
            if self.x(row, q) {
                self.rs[row] ^= 1;
            }
        }
    }

    /// Pauli-Y on `q`.
    pub fn y_gate(&mut self, q: usize) {
        for row in 0..2 * self.n {
            if self.x(row, q) ^ self.z(row, q) {
                self.rs[row] ^= 1;
            }
        }
    }

    /// Phase contribution g(x1,z1,x2,z2) of multiplying two Paulis,
    /// in {-1, 0, +1} (mod 4 arithmetic over 2 bits).
    #[inline]
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// Row `h` *= row `i` (Pauli product with phase tracking).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase = 2 * (self.rs[h] as i32) + 2 * (self.rs[i] as i32);
        for q in 0..self.n {
            phase += Self::g(self.x(i, q), self.z(i, q), self.x(h, q), self.z(h, q));
        }
        let phase = phase.rem_euclid(4);
        debug_assert!(phase == 0 || phase == 2, "rowsum produced odd phase");
        self.rs[h] = (phase == 2) as u8;
        for w in 0..self.words {
            self.xs[h][w] ^= self.xs[i][w];
            self.zs[h][w] ^= self.zs[i][w];
        }
    }

    /// Returns `Some(v)` when a Z-measurement of `q` is deterministic.
    pub fn measure_determined(&mut self, q: usize) -> Option<bool> {
        let n = self.n;
        if (n..2 * n).any(|row| self.x(row, q)) {
            return None;
        }
        // Deterministic: accumulate into the scratch row.
        let scratch = 2 * n;
        self.xs[scratch].iter_mut().for_each(|w| *w = 0);
        self.zs[scratch].iter_mut().for_each(|w| *w = 0);
        self.rs[scratch] = 0;
        for i in 0..n {
            if self.x(i, q) {
                self.rowsum(scratch, i + n);
            }
        }
        Some(self.rs[scratch] == 1)
    }

    /// Measures qubit `q` in the Z basis, collapsing the state.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        if let Some(v) = self.measure_determined(q) {
            return v;
        }
        let n = self.n;
        // Random outcome: find the first stabilizer anticommuting with Z_q.
        let p = (n..2 * n)
            .find(|&row| self.x(row, q))
            .expect("non-deterministic measurement must have such a row");
        // Aaronson–Gottesman step: rowsum every anticommuting row EXCEPT
        // `p` and `p - n`. Including `p - n` is tempting (it is overwritten
        // two lines below anyway) but wrong: its product with row `p` can
        // carry an imaginary phase, which violates the rowsum invariant.
        for row in 0..2 * n {
            if row != p && row != p - n && self.x(row, q) {
                self.rowsum(row, p);
            }
        }
        // Destabilizer p-n <- old stabilizer p.
        self.xs[p - n] = self.xs[p].clone();
        self.zs[p - n] = self.zs[p].clone();
        self.rs[p - n] = self.rs[p];
        // New stabilizer p = +/- Z_q with random sign.
        let outcome = rng.gen_bool(0.5);
        self.xs[p].iter_mut().for_each(|w| *w = 0);
        self.zs[p].iter_mut().for_each(|w| *w = 0);
        self.set_z(p, q, true);
        self.rs[p] = outcome as u8;
        outcome
    }

    /// Resets `q` to |0> (measure, then X if the result was 1).
    pub fn reset(&mut self, q: usize, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.x_gate(q);
        }
    }

    /// Applies a Clifford gate from the shared gate set.
    ///
    /// # Panics
    ///
    /// Panics on non-Clifford gates.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        match gate {
            Gate::Id => {}
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => self.sdg(qubits[0]),
            Gate::X => self.x_gate(qubits[0]),
            Gate::Y => self.y_gate(qubits[0]),
            Gate::Z => self.z_gate(qubits[0]),
            // SX = H S H up to global phase (phase is unobservable here).
            Gate::SX => {
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::CX => self.cx(qubits[0], qubits[1]),
            Gate::CZ => self.cz(qubits[0], qubits[1]),
            // CY = Sdg(t); CX; S(t).
            Gate::CY => {
                self.sdg(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.s(qubits[1]);
            }
            Gate::SWAP => self.swap(qubits[0], qubits[1]),
            other => panic!("gate {other} is not Clifford"),
        }
    }

    /// Runs a full Clifford circuit, returning the classical outcome word.
    ///
    /// Outcomes are packed [`OutcomeWord`]s (classical bit `i` in bit `i`),
    /// matching [`crate::dist::Counts`]; the register width is unbounded —
    /// measurement bits past 64 spill into multi-word outcomes, which is
    /// what lets distance-7 surface-code memory circuits (97+ classical
    /// bits) run at all. (Before the multi-word register layer this method
    /// refused >64-clbit circuits outright.)
    ///
    /// # Errors
    ///
    /// [`SimError::NonCliffordGate`] on the first non-Clifford gate.
    pub fn try_run_circuit(circuit: &Circuit, rng: &mut impl Rng) -> Result<OutcomeWord, SimError> {
        if let Some(gate) = crate::backend::first_non_clifford(circuit) {
            return Err(SimError::NonCliffordGate { gate });
        }
        let mut sim = StabilizerSim::new(circuit.num_qubits());
        let mut clbits = OutcomeWord::zero();
        sim.run_circuit_into(circuit, rng, &mut clbits);
        Ok(clbits)
    }

    /// One trajectory of a pre-validated Clifford circuit, writing
    /// measurement results into `clbits`. Both the tableau and the outcome
    /// word are reset first, so calling this in a shot loop is safe without
    /// further ceremony (the allocations are reused either way).
    ///
    /// # Panics
    ///
    /// Panics on non-Clifford gates; validate with
    /// [`crate::backend::first_non_clifford`] first.
    pub fn run_circuit_into(
        &mut self,
        circuit: &Circuit,
        rng: &mut impl Rng,
        clbits: &mut OutcomeWord,
    ) {
        self.reinit();
        clbits.clear();
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => self.apply_gate(*gate, qubits),
                Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                } => {
                    if clbits.bit(*clbit) == *value {
                        self.apply_gate(*gate, qubits);
                    }
                }
                Op::Measure { qubit, clbit } => {
                    let outcome = self.measure(*qubit, rng);
                    clbits.set_bit(*clbit, outcome);
                }
                Op::Reset { qubit } => self.reset(*qubit, rng),
                Op::Barrier { .. } => {}
            }
        }
    }

    /// Panicking wrapper around [`StabilizerSim::try_run_circuit`].
    ///
    /// # Panics
    ///
    /// Panics when the circuit contains non-Clifford gates.
    pub fn run_circuit(circuit: &Circuit, rng: &mut impl Rng) -> OutcomeWord {
        match Self::try_run_circuit(circuit, rng) {
            Ok(word) => word,
            Err(e) => panic!("stabilizer simulation failed: {e}"),
        }
    }

    /// Samples `shots` independent trajectories of a Clifford circuit into a
    /// [`Counts`] table — the distribution-level mirror of the dense
    /// executor's sampling path. The tableau and the outcome scratch word
    /// are reused across shots.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StabilizerSim::try_run_circuit`].
    pub fn sample_counts(
        circuit: &Circuit,
        shots: u64,
        rng: &mut impl Rng,
    ) -> Result<Counts, SimError> {
        if let Some(gate) = crate::backend::first_non_clifford(circuit) {
            return Err(SimError::NonCliffordGate { gate });
        }
        let mut counts = Counts::new(circuit.num_clbits());
        let mut sim = StabilizerSim::new(circuit.num_qubits());
        let mut word = OutcomeWord::zero();
        for _ in 0..shots {
            sim.run_circuit_into(circuit, rng, &mut word);
            counts.record_word(&word);
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_state_measures_zero() {
        let mut sim = StabilizerSim::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        for q in 0..4 {
            assert_eq!(sim.measure_determined(q), Some(false));
            assert!(!sim.measure(q, &mut rng));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut sim = StabilizerSim::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        sim.x_gate(1);
        assert!(!sim.measure(0, &mut rng));
        assert!(sim.measure(1, &mut rng));
    }

    #[test]
    fn h_gives_random_outcomes_then_collapses() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ones = 0;
        for _ in 0..200 {
            let mut sim = StabilizerSim::new(1);
            sim.h(0);
            assert_eq!(sim.measure_determined(0), None);
            let first = sim.measure(0, &mut rng);
            // Second measurement must repeat the first.
            assert_eq!(sim.measure_determined(0), Some(first));
            ones += first as usize;
        }
        assert!((50..150).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn bell_pair_correlates() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let mut sim = StabilizerSim::new(2);
            sim.h(0);
            sim.cx(0, 1);
            let a = sim.measure(0, &mut rng);
            let b = sim.measure(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_three_way_correlation() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let mut sim = StabilizerSim::new(3);
            sim.h(0);
            sim.cx(0, 1);
            sim.cx(1, 2);
            let a = sim.measure(0, &mut rng);
            assert_eq!(sim.measure(1, &mut rng), a);
            assert_eq!(sim.measure(2, &mut rng), a);
        }
    }

    #[test]
    fn z_error_detected_by_x_basis() {
        // |+> with a Z error measures |-> in the X basis: H then measure = 1.
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = StabilizerSim::new(1);
        sim.h(0); // |+>
        sim.z_gate(0); // |->
        sim.h(0); // |1>
        assert!(sim.measure(0, &mut rng));
    }

    #[test]
    fn s_gate_squared_is_z() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sim = StabilizerSim::new(1);
        sim.h(0);
        sim.s(0);
        sim.s(0); // = Z|+> = |->
        sim.h(0);
        assert!(sim.measure(0, &mut rng));
    }

    #[test]
    fn sdg_inverts_s() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sim = StabilizerSim::new(1);
        sim.h(0);
        sim.s(0);
        sim.sdg(0);
        sim.h(0);
        assert!(!sim.measure(0, &mut rng));
    }

    #[test]
    fn cz_phase_kickback() {
        // CZ between |+>|1> gives |->|1>.
        let mut rng = StdRng::seed_from_u64(8);
        let mut sim = StabilizerSim::new(2);
        sim.h(0);
        sim.x_gate(1);
        sim.cz(0, 1);
        sim.h(0);
        assert!(sim.measure(0, &mut rng));
    }

    #[test]
    fn swap_moves_excitation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sim = StabilizerSim::new(2);
        sim.x_gate(0);
        sim.swap(0, 1);
        assert!(!sim.measure(0, &mut rng));
        assert!(sim.measure(1, &mut rng));
    }

    #[test]
    fn reset_clears_qubit() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut sim = StabilizerSim::new(1);
        sim.h(0);
        sim.reset(0, &mut rng);
        assert_eq!(sim.measure_determined(0), Some(false));
    }

    #[test]
    fn agrees_with_state_vector_on_random_clifford_circuits() {
        use crate::state::StateVector;
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..25 {
            // Build a random 4-qubit Clifford circuit (unitary portion).
            let mut qc = Circuit::new(4, 4);
            for _ in 0..20 {
                match rng.gen_range(0..5) {
                    0 => {
                        qc.h(rng.gen_range(0..4));
                    }
                    1 => {
                        qc.s(rng.gen_range(0..4));
                    }
                    2 => {
                        let a = rng.gen_range(0..4);
                        let b = (a + rng.gen_range(1..4)) % 4;
                        qc.cx(a, b);
                    }
                    3 => {
                        qc.x(rng.gen_range(0..4));
                    }
                    _ => {
                        qc.z(rng.gen_range(0..4));
                    }
                }
            }
            // Compare marginal probabilities of each qubit being 1.
            let mut sv = StateVector::zero(4);
            for op in qc.ops() {
                if let Op::Gate { gate, qubits } = op {
                    sv.apply_gate(*gate, qubits);
                }
            }
            for q in 0..4 {
                let p1 = sv.prob_one(q);
                let mut sim = StabilizerSim::new(4);
                for op in qc.ops() {
                    if let Op::Gate { gate, qubits } = op {
                        sim.apply_gate(*gate, qubits);
                    }
                }
                match sim.measure_determined(q) {
                    Some(v) => {
                        let expected = if v { 1.0 } else { 0.0 };
                        assert!(
                            (p1 - expected).abs() < 1e-9,
                            "trial {trial} qubit {q}: sv={p1}, tableau={expected}"
                        );
                    }
                    None => {
                        assert!(
                            (p1 - 0.5).abs() < 1e-9,
                            "trial {trial} qubit {q}: sv={p1}, tableau=random"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn run_circuit_handles_conditionals() {
        let mut qc = Circuit::new(2, 2);
        qc.x(0).measure(0, 0);
        qc.cond_gate(Gate::X, &[1], 0, true);
        qc.measure(1, 1);
        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(StabilizerSim::run_circuit(&qc, &mut rng), 0b11);
    }

    #[test]
    #[should_panic(expected = "not Clifford")]
    fn rejects_t_gate() {
        let mut sim = StabilizerSim::new(1);
        sim.apply_gate(Gate::T, &[0]);
    }

    #[test]
    fn try_run_circuit_records_past_64_clbits() {
        // 65 clbits: bit 64 of a u64 word does not exist, so before the
        // multi-word register layer this circuit was refused outright. Now
        // the outcome spills into a second word.
        let mut qc = Circuit::new(2, 65);
        qc.x(0).measure(0, 64).measure(1, 0);
        let mut rng = StdRng::seed_from_u64(20);
        let word = StabilizerSim::try_run_circuit(&qc, &mut rng).unwrap();
        assert!(word.bit(64));
        assert!(!word.bit(0));
        assert_eq!(word, OutcomeWord::from_words(&[0, 1]));
        // Conditionals read the spilled bits too.
        let mut qc = Circuit::new(2, 70);
        qc.x(0).measure(0, 69);
        qc.cond_gate(Gate::X, &[1], 69, true);
        qc.measure(1, 0);
        let word = StabilizerSim::try_run_circuit(&qc, &mut rng).unwrap();
        assert!(word.bit(69));
        assert!(word.bit(0));
    }

    #[test]
    fn try_run_circuit_rejects_non_clifford() {
        let mut qc = Circuit::new(1, 1);
        qc.t(0).measure(0, 0);
        let mut rng = StdRng::seed_from_u64(21);
        assert_eq!(
            StabilizerSim::try_run_circuit(&qc, &mut rng),
            Err(SimError::NonCliffordGate { gate: Gate::T })
        );
    }

    #[test]
    fn sample_counts_matches_bell_statistics() {
        let mut qc = Circuit::new(2, 2);
        qc.h(0).cx(0, 1).measure_all();
        let mut rng = StdRng::seed_from_u64(22);
        let counts = StabilizerSim::sample_counts(&qc, 2000, &mut rng).unwrap();
        assert_eq!(counts.shots(), 2000);
        assert_eq!(counts.count(0b01) + counts.count(0b10), 0);
        let p00 = counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn measurement_preserves_phase_invariant_with_y_and_sx() {
        // Regression: Y;SX leaves the destabilizer with a sign such that
        // rowsum-ing row p-n during measurement produced an imaginary
        // intermediate phase (debug assert). The AG update must skip p-n.
        let mut rng = StdRng::seed_from_u64(19);
        let mut sim = StabilizerSim::new(1);
        sim.y_gate(0);
        sim.apply_gate(Gate::SX, &[0]);
        // SX Y |0> measures deterministically after collapse; the first
        // measurement is random and must not panic.
        let first = sim.measure(0, &mut rng);
        assert_eq!(sim.measure_determined(0), Some(first));
    }

    #[test]
    fn reinit_restores_the_zero_state() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut sim = StabilizerSim::new(3);
        sim.h(0);
        sim.cx(0, 1);
        sim.x_gate(2);
        sim.measure(0, &mut rng);
        sim.reinit();
        assert_eq!(sim, StabilizerSim::new(3));
        for q in 0..3 {
            assert_eq!(sim.measure_determined(q), Some(false));
        }
    }

    #[test]
    fn large_tableau_smoke() {
        // 150 qubits crosses the one-word boundary (>64 columns).
        let mut rng = StdRng::seed_from_u64(13);
        let mut sim = StabilizerSim::new(150);
        sim.h(0);
        for q in 0..149 {
            sim.cx(q, q + 1);
        }
        let first = sim.measure(0, &mut rng);
        assert_eq!(sim.measure(149, &mut rng), first);
    }
}
