//! Noisy-path replay plans: per-gate kernels precompiled once, replayed
//! in segments between noise insertion points.
//!
//! The compiled plans in [`crate::plan`] encode noiseless semantics —
//! fusion reassociates exactly the per-gate boundaries that Pauli noise
//! channels attach to. That used to leave every noisy dense trajectory on
//! [`StateVector::apply_gate`]'s per-gate path, re-deriving trig-heavy
//! matrix entries and kernel selection on every gate of every shot. A
//! [`NoisyPlan`] keeps the per-gate *boundaries* (so the RNG stream is
//! untouched) while hoisting classification and matrix synthesis to
//! compile time:
//!
//! * Gates whose arity-class depolarizing rate is zero draw no
//!   randomness, so consecutive runs of them compile into one
//!   [`NoisyOp::Segment`] — a warm replay of precompiled kernels with no
//!   noise bookkeeping at all.
//! * Gates that do attach noise become [`NoisyOp::NoisyGate`]: the same
//!   precompiled kernel, followed by exactly the per-qubit draws
//!   [`NoiseModel::sample_gate_errors`] makes.
//!
//! **Bit-identity is the contract**, asserted in the executor's tests and
//! the plan proptests: every [`ReplayKernel`] variant mirrors one
//! [`StateVector::apply_gate`] dispatch arm — same kernel, same operand
//! handling — and never lowers through the plan layer's reclassification
//! (multiplying by an exact complex `1` can still flip the sign bit of a
//! `-0.0`, so even mathematically identity-preserving rewrites are not
//! bitwise safe). Rate *values* are read live at replay time; only the
//! structural signature — which channels draw randomness, see
//! [`noise_signature`] — shapes the plan, so sweeping a rate reuses one
//! compiled plan.

use crate::kernels;
use crate::noise::{NoiseModel, Pauli};
use crate::state::StateVector;
use crate::word::OutcomeWord;
use qcir::circuit::{Circuit, Op};
use qcir::gate::{Gate, GateKind};
use qcir::math::{Matrix, C64};
use rand::Rng;

/// Which noise channels are structurally live (rate ≠ 0): bit 0 =
/// one-qubit depolarizing, bit 1 = two-qubit depolarizing, bit 2 = idle.
/// This is the part of a [`NoiseModel`] that changes *where* a trajectory
/// draws randomness; readout error attaches only to measurements, which
/// are explicit ops already, so it does not shape the plan.
pub fn noise_signature(noise: &NoiseModel) -> u8 {
    u8::from(noise.one_qubit_depol != 0.0)
        | (u8::from(noise.two_qubit_depol != 0.0) << 1)
        | (u8::from(noise.idle_error != 0.0) << 2)
}

/// One precompiled gate application, mirroring one
/// [`StateVector::apply_gate`] dispatch arm exactly (same kernel, same
/// operand handling) so replay is bit-identical to per-gate dispatch.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayKernel {
    /// [`GateKind::Identity`]: no state change (the gate still exists as
    /// a noise attachment point when its rate is live).
    Noop,
    /// [`GateKind::Diagonal1`].
    Diag1 {
        /// Target qubit.
        qubit: usize,
        /// Diagonal entry for the `|0>` component.
        d0: C64,
        /// Diagonal entry for the `|1>` component.
        d1: C64,
    },
    /// [`GateKind::FlipX`].
    FlipX {
        /// Target qubit.
        qubit: usize,
    },
    /// [`GateKind::Dense1`].
    Dense1 {
        /// Target qubit.
        qubit: usize,
        /// Row-major 2×2 entries.
        m: [C64; 4],
    },
    /// [`GateKind::ControlledDiagonal1`].
    CDiag1 {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Diagonal entry for the target's `|0>` component.
        d0: C64,
        /// Diagonal entry for the target's `|1>` component.
        d1: C64,
    },
    /// [`GateKind::ControlledFlipX`].
    CFlipX {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// [`GateKind::ControlledDense1`].
    CDense1 {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Row-major 2×2 entries of the controlled block.
        m: [C64; 4],
    },
    /// [`GateKind::Swap`].
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// [`GateKind::DoublyControlledFlipX`].
    Ccx {
        /// First control.
        c0: usize,
        /// Second control.
        c1: usize,
        /// Target qubit.
        target: usize,
    },
    /// [`GateKind::ControlledSwap`].
    CSwap {
        /// Control qubit.
        control: usize,
        /// First exchanged qubit.
        a: usize,
        /// Second exchanged qubit.
        b: usize,
    },
    /// [`GateKind::General`]: the matrix precomputed once, applied through
    /// the same scatter/gather kernel.
    DenseK {
        /// Gate operands (big-endian: first is the matrix MSB).
        qubits: Vec<usize>,
        /// The gate's dense unitary.
        matrix: Matrix,
    },
}

impl ReplayKernel {
    /// Precompiles one gate: the same match [`StateVector::apply_gate`]
    /// performs per call, done once per plan instead.
    fn compile(gate: Gate, qubits: &[usize]) -> ReplayKernel {
        match gate.kind() {
            GateKind::Identity => ReplayKernel::Noop,
            GateKind::Diagonal1 { d0, d1 } => ReplayKernel::Diag1 {
                qubit: qubits[0],
                d0,
                d1,
            },
            GateKind::FlipX => ReplayKernel::FlipX { qubit: qubits[0] },
            GateKind::Dense1 { m } => ReplayKernel::Dense1 {
                qubit: qubits[0],
                m,
            },
            GateKind::ControlledDiagonal1 { d0, d1 } => ReplayKernel::CDiag1 {
                control: qubits[0],
                target: qubits[1],
                d0,
                d1,
            },
            GateKind::ControlledFlipX => ReplayKernel::CFlipX {
                control: qubits[0],
                target: qubits[1],
            },
            GateKind::ControlledDense1 { m } => ReplayKernel::CDense1 {
                control: qubits[0],
                target: qubits[1],
                m,
            },
            GateKind::Swap => ReplayKernel::Swap {
                a: qubits[0],
                b: qubits[1],
            },
            GateKind::DoublyControlledFlipX => ReplayKernel::Ccx {
                c0: qubits[0],
                c1: qubits[1],
                target: qubits[2],
            },
            GateKind::ControlledSwap => ReplayKernel::CSwap {
                control: qubits[0],
                a: qubits[1],
                b: qubits[2],
            },
            GateKind::General => ReplayKernel::DenseK {
                qubits: qubits.to_vec(),
                matrix: gate.matrix(),
            },
        }
    }

    /// Applies the kernel — the exact call the matching
    /// [`StateVector::apply_gate`] arm makes.
    fn apply(&self, sv: &mut StateVector) {
        match self {
            ReplayKernel::Noop => {}
            ReplayKernel::Diag1 { qubit, d0, d1 } => {
                kernels::apply_diag1(sv.amps_mut(), *qubit, *d0, *d1);
            }
            ReplayKernel::FlipX { qubit } => kernels::apply_x(sv.amps_mut(), *qubit),
            ReplayKernel::Dense1 { qubit, m } => kernels::apply_1q(sv.amps_mut(), *qubit, m),
            ReplayKernel::CDiag1 {
                control,
                target,
                d0,
                d1,
            } => {
                kernels::apply_controlled_diag1(sv.amps_mut(), *control, *target, *d0, *d1);
            }
            ReplayKernel::CFlipX { control, target } => {
                kernels::apply_cx(sv.amps_mut(), *control, *target);
            }
            ReplayKernel::CDense1 { control, target, m } => {
                kernels::apply_controlled_1q(sv.amps_mut(), *control, *target, m);
            }
            ReplayKernel::Swap { a, b } => kernels::apply_swap(sv.amps_mut(), *a, *b),
            ReplayKernel::Ccx { c0, c1, target } => {
                kernels::apply_ccx(sv.amps_mut(), *c0, *c1, *target);
            }
            ReplayKernel::CSwap { control, a, b } => {
                kernels::apply_cswap(sv.amps_mut(), *control, *a, *b);
            }
            ReplayKernel::DenseK { qubits, matrix } => sv.apply_matrix(matrix, qubits),
        }
    }
}

/// One step of a [`NoisyPlan`] trajectory.
#[derive(Debug, Clone, PartialEq)]
pub enum NoisyOp {
    /// A maximal run of gates that draw no randomness, replayed warm.
    Segment(Vec<ReplayKernel>),
    /// A gate whose arity-class depolarizing rate is live: the kernel,
    /// then per-qubit error draws in operand order (exactly what
    /// [`NoiseModel::sample_gate_errors`] does).
    NoisyGate {
        /// The precompiled gate kernel.
        kernel: ReplayKernel,
        /// The gate's operands, in gate order (the draw order).
        qubits: Vec<usize>,
        /// `true` for one-qubit gates (selects `one_qubit_depol`).
        one_q: bool,
    },
    /// Computational-basis measurement, with readout error applied.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        clbit: usize,
    },
    /// Reset a qubit to `|0>`.
    Reset {
        /// Reset qubit.
        qubit: usize,
    },
    /// A classically conditioned gate; noise samples only when it fires,
    /// mirroring the per-gate path.
    Cond {
        /// The precompiled gate kernel.
        kernel: ReplayKernel,
        /// The gate's operands, in gate order.
        qubits: Vec<usize>,
        /// `true` for one-qubit gates.
        one_q: bool,
        /// Classical bit the condition reads.
        clbit: usize,
        /// Value the bit must hold for the gate to apply.
        value: bool,
    },
    /// A barrier moment with idle noise live: per-qubit idle draws
    /// (exactly [`NoiseModel::sample_idle_errors`]).
    Idle,
}

/// A compiled noisy trajectory program for the dense backend: per-gate
/// kernels with classification hoisted to compile time, segmented at the
/// points where the noise model draws randomness. Immutable once compiled
/// — cache and share freely across threads.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyPlan {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<NoisyOp>,
    signature: u8,
}

impl NoisyPlan {
    /// Compiles `circuit` against `noise`'s structural signature (rate
    /// values do not matter — see [`noise_signature`]).
    pub fn compile(circuit: &Circuit, noise: &NoiseModel) -> NoisyPlan {
        let signature = noise_signature(noise);
        let one_q_live = signature & 1 != 0;
        let two_q_live = signature & 2 != 0;
        let idle_live = signature & 4 != 0;
        let mut ops: Vec<NoisyOp> = Vec::new();
        let mut segment: Vec<ReplayKernel> = Vec::new();
        let flush = |ops: &mut Vec<NoisyOp>, segment: &mut Vec<ReplayKernel>| {
            if !segment.is_empty() {
                ops.push(NoisyOp::Segment(std::mem::take(segment)));
            }
        };
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => {
                    let one_q = gate.num_qubits() == 1;
                    if if one_q { one_q_live } else { two_q_live } {
                        flush(&mut ops, &mut segment);
                        ops.push(NoisyOp::NoisyGate {
                            kernel: ReplayKernel::compile(*gate, qubits),
                            qubits: qubits.to_vec(),
                            one_q,
                        });
                    } else {
                        // The sampler early-returns on a zero rate — no
                        // randomness attaches, so the gate joins the warm
                        // run. An identity drops entirely (applies
                        // nothing and, with a dead rate, draws nothing).
                        let kernel = ReplayKernel::compile(*gate, qubits);
                        if kernel != ReplayKernel::Noop {
                            segment.push(kernel);
                        }
                    }
                }
                Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                } => {
                    flush(&mut ops, &mut segment);
                    ops.push(NoisyOp::Cond {
                        kernel: ReplayKernel::compile(*gate, qubits),
                        qubits: qubits.to_vec(),
                        one_q: gate.num_qubits() == 1,
                        clbit: *clbit,
                        value: *value,
                    });
                }
                Op::Measure { qubit, clbit } => {
                    flush(&mut ops, &mut segment);
                    ops.push(NoisyOp::Measure {
                        qubit: *qubit,
                        clbit: *clbit,
                    });
                }
                Op::Reset { qubit } => {
                    flush(&mut ops, &mut segment);
                    ops.push(NoisyOp::Reset { qubit: *qubit });
                }
                // With idle noise dead the sampler draws nothing and a
                // barrier is invisible to the replay.
                Op::Barrier { .. } => {
                    if idle_live {
                        flush(&mut ops, &mut segment);
                        ops.push(NoisyOp::Idle);
                    }
                }
            }
        }
        flush(&mut ops, &mut segment);
        NoisyPlan {
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            ops,
            signature,
        }
    }

    /// Number of qubits the plan addresses.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Width of the classical register.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The compiled step list, in execution order.
    pub fn ops(&self) -> &[NoisyOp] {
        &self.ops
    }

    /// The structural noise signature this plan was compiled against.
    pub fn signature(&self) -> u8 {
        self.signature
    }

    /// Runs one full noisy Monte-Carlo trajectory — bit-identical (final
    /// state, classical bits, and RNG stream) to the executor's per-gate
    /// dispatch loop on the dense backend, for any noise model matching
    /// this plan's signature.
    pub fn run_trajectory(
        &self,
        sv: &mut StateVector,
        noise: &NoiseModel,
        rng: &mut impl Rng,
        clbits: &mut OutcomeWord,
    ) {
        debug_assert_eq!(
            noise_signature(noise),
            self.signature,
            "replay plan compiled for a different noise signature"
        );
        sv.reinit();
        clbits.clear();
        for op in &self.ops {
            match op {
                NoisyOp::Segment(run) => {
                    for kernel in run {
                        kernel.apply(sv);
                    }
                }
                NoisyOp::NoisyGate {
                    kernel,
                    qubits,
                    one_q,
                } => {
                    kernel.apply(sv);
                    depolarize(sv, noise, rng, qubits, *one_q);
                }
                NoisyOp::Measure { qubit, clbit } => {
                    let raw = sv.measure(*qubit, rng);
                    let reported = noise.sample_readout(raw, rng);
                    clbits.set_bit(*clbit, reported);
                }
                NoisyOp::Reset { qubit } => sv.reset(*qubit, rng),
                NoisyOp::Cond {
                    kernel,
                    qubits,
                    one_q,
                    clbit,
                    value,
                } => {
                    if clbits.bit(*clbit) == *value {
                        kernel.apply(sv);
                        depolarize(sv, noise, rng, qubits, *one_q);
                    }
                }
                NoisyOp::Idle => {
                    for (q, pauli) in noise.sample_idle_errors(self.num_qubits, rng) {
                        sv.apply_pauli(q, pauli);
                    }
                }
            }
        }
    }
}

/// Post-gate depolarizing draws, matching
/// [`NoiseModel::sample_gate_errors`]'s stream exactly: same rate choice,
/// same per-qubit order, same draws. Errors apply inline instead of being
/// collected first — a Pauli application reads no randomness, so the
/// interleaving cannot perturb the stream.
fn depolarize(
    sv: &mut StateVector,
    noise: &NoiseModel,
    rng: &mut impl Rng,
    qubits: &[usize],
    one_q: bool,
) {
    let p = if one_q {
        noise.one_qubit_depol
    } else {
        noise.two_qubit_depol
    };
    if p == 0.0 {
        return;
    }
    for &q in qubits {
        if rng.gen_bool(p) {
            sv.apply_pauli(q, Pauli::random(rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The executor's per-gate noisy trajectory loop, replicated through
    /// public APIs — the reference the replay must match bit for bit.
    fn reference_trajectory(
        circuit: &Circuit,
        noise: &NoiseModel,
        sv: &mut StateVector,
        rng: &mut StdRng,
        clbits: &mut OutcomeWord,
    ) {
        sv.reinit();
        clbits.clear();
        for op in circuit.ops() {
            match op {
                Op::Gate { gate, qubits } => {
                    sv.apply_gate(*gate, qubits);
                    for (q, pauli) in noise.sample_gate_errors(gate, qubits, rng) {
                        sv.apply_pauli(q, pauli);
                    }
                }
                Op::CondGate {
                    gate,
                    qubits,
                    clbit,
                    value,
                } => {
                    if clbits.bit(*clbit) == *value {
                        sv.apply_gate(*gate, qubits);
                        for (q, pauli) in noise.sample_gate_errors(gate, qubits, rng) {
                            sv.apply_pauli(q, pauli);
                        }
                    }
                }
                Op::Measure { qubit, clbit } => {
                    let raw = sv.measure(*qubit, rng);
                    clbits.set_bit(*clbit, noise.sample_readout(raw, rng));
                }
                Op::Reset { qubit } => sv.reset(*qubit, rng),
                Op::Barrier { .. } => {
                    for (q, pauli) in noise.sample_idle_errors(sv.num_qubits(), rng) {
                        sv.apply_pauli(q, pauli);
                    }
                }
            }
        }
    }

    fn busy_circuit() -> Circuit {
        let mut qc = Circuit::new(3, 3);
        qc.h(0).cx(0, 1).t(2).rz(0.37, 1);
        qc.barrier_all();
        qc.swap(1, 2).ccx(0, 1, 2).push_gate(Gate::Id, &[0]);
        qc.measure(0, 0);
        qc.cond_gate(Gate::X, &[2], 0, true);
        qc.reset(1);
        qc.h(1).cz(1, 2);
        qc.measure(1, 1);
        qc.measure(2, 2);
        qc
    }

    #[test]
    fn segments_split_exactly_at_live_noise_sites() {
        let qc = busy_circuit();
        // Two-qubit noise only: 1q gates stay in warm segments, every
        // 2q/3q gate becomes a noisy step.
        let noise = NoiseModel {
            one_qubit_depol: 0.0,
            two_qubit_depol: 0.05,
            readout_error: 0.0,
            idle_error: 0.0,
            label: "2q-only".into(),
        };
        let plan = NoisyPlan::compile(&qc, &noise);
        let noisy_gates = plan
            .ops()
            .iter()
            .filter(|op| matches!(op, NoisyOp::NoisyGate { .. }))
            .count();
        let segments = plan
            .ops()
            .iter()
            .filter(|op| matches!(op, NoisyOp::Segment(_)))
            .count();
        assert_eq!(noisy_gates, 4, "CX, SWAP, CCX and CZ attach noise");
        assert!(segments >= 2, "1q runs stay warm: {:?}", plan.ops());
        // The dead idle channel erases the barrier entirely.
        assert!(plan.ops().iter().all(|op| !matches!(op, NoisyOp::Idle)));
        // A fully dead gate-noise signature folds everything unitary into
        // segments.
        let readout_only = NoiseModel {
            one_qubit_depol: 0.0,
            two_qubit_depol: 0.0,
            readout_error: 0.1,
            idle_error: 0.0,
            label: "readout-only".into(),
        };
        let plan = NoisyPlan::compile(&qc, &readout_only);
        assert!(plan
            .ops()
            .iter()
            .all(|op| !matches!(op, NoisyOp::NoisyGate { .. })));
        assert_eq!(plan.signature(), 0);
    }

    #[test]
    fn replay_is_bit_identical_to_per_gate_dispatch() {
        let qc = busy_circuit();
        let models = [
            NoiseModel::uniform_depolarizing(0.05),
            NoiseModel {
                one_qubit_depol: 0.02,
                two_qubit_depol: 0.0,
                readout_error: 0.1,
                idle_error: 0.03,
                label: "mixed".into(),
            },
            NoiseModel {
                one_qubit_depol: 0.0,
                two_qubit_depol: 0.07,
                readout_error: 0.0,
                idle_error: 0.0,
                label: "2q-only".into(),
            },
            NoiseModel::ideal(),
        ];
        for noise in models {
            let plan = NoisyPlan::compile(&qc, &noise);
            for seed in 0..25u64 {
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let mut sv_a = StateVector::zero(3);
                let mut sv_b = StateVector::zero(3);
                let mut word_a = OutcomeWord::zero();
                let mut word_b = OutcomeWord::zero();
                plan.run_trajectory(&mut sv_a, &noise, &mut rng_a, &mut word_a);
                reference_trajectory(&qc, &noise, &mut sv_b, &mut rng_b, &mut word_b);
                for (i, (a, b)) in sv_a.amplitudes().iter().zip(sv_b.amplitudes()).enumerate() {
                    assert_eq!(
                        (a.re.to_bits(), a.im.to_bits()),
                        (b.re.to_bits(), b.im.to_bits()),
                        "noise {} seed {seed} amp {i}: {a:?} vs {b:?}",
                        noise.label
                    );
                }
                assert_eq!(word_a, word_b, "noise {} seed {seed}", noise.label);
                // The RNG streams advanced identically too.
                assert_eq!(
                    rng_a.gen::<u64>(),
                    rng_b.gen::<u64>(),
                    "noise {} seed {seed}: RNG streams diverged",
                    noise.label
                );
            }
        }
    }
}
