//! Monte-Carlo noise channels.
//!
//! Noise is modelled the way hardware calibration data reports it: a
//! depolarizing probability per one- and two-qubit gate, an idle decay
//! probability, and a readout (measurement assignment) error. Channels are
//! sampled per trajectory — with probability `p` a uniformly random
//! non-identity Pauli is applied to the gate's qubits — which converges to
//! the depolarizing channel in the shot average.

use qcir::gate::Gate;
use rand::Rng;

/// Which Pauli error was injected (for syndrome bookkeeping in `qec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Bit flip.
    X,
    /// Both.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All three non-identity Paulis.
    pub const ALL: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// The corresponding gate.
    pub fn gate(self) -> Gate {
        match self {
            Pauli::X => Gate::X,
            Pauli::Y => Gate::Y,
            Pauli::Z => Gate::Z,
        }
    }

    /// Applies this Pauli to `qubit` of `state` through the specialized
    /// kernels (X/Y are index swaps, Z a phase multiply) — the error
    /// injection hot path in the trajectory executor.
    pub fn apply(self, state: &mut crate::state::StateVector, qubit: usize) {
        state.apply_pauli(qubit, self);
    }

    /// Samples a uniformly random non-identity Pauli.
    pub fn random(rng: &mut impl Rng) -> Pauli {
        Pauli::ALL[rng.gen_range(0..3)]
    }
}

/// An aggregate noise model.
///
/// ```
/// use qsim::noise::NoiseModel;
/// let nm = NoiseModel::uniform_depolarizing(1e-3);
/// assert!(nm.is_noisy());
/// assert!(!NoiseModel::ideal().is_noisy());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after each one-qubit gate.
    pub one_qubit_depol: f64,
    /// Depolarizing probability (per qubit) after each two-qubit gate.
    pub two_qubit_depol: f64,
    /// Probability a measured bit is reported flipped.
    pub readout_error: f64,
    /// Per-moment idle decay: probability of an X or Z error on every qubit
    /// per barrier-delimited moment (coarse T1/T2 proxy).
    pub idle_error: f64,
    /// Human-readable profile name.
    pub label: String,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::ideal()
    }
}

impl NoiseModel {
    /// The noiseless model.
    pub fn ideal() -> Self {
        NoiseModel {
            one_qubit_depol: 0.0,
            two_qubit_depol: 0.0,
            readout_error: 0.0,
            idle_error: 0.0,
            label: "ideal".to_string(),
        }
    }

    /// Uniform depolarizing noise: the same rate everywhere, no readout
    /// error. Standard for QEC threshold studies.
    pub fn uniform_depolarizing(p: f64) -> Self {
        NoiseModel {
            one_qubit_depol: p,
            two_qubit_depol: p,
            readout_error: 0.0,
            idle_error: 0.0,
            label: format!("depolarizing(p={p})"),
        }
    }

    /// `true` when any channel has a non-zero rate.
    pub fn is_noisy(&self) -> bool {
        self.one_qubit_depol > 0.0
            || self.two_qubit_depol > 0.0
            || self.readout_error > 0.0
            || self.idle_error > 0.0
    }

    /// Returns a copy with every rate multiplied by `factor` (clamped to
    /// [0, 1]). The QEC agent uses this to express "error rate after
    /// correction", mirroring the paper's Figure 4(c) methodology of
    /// re-simulating with a reduced rate.
    pub fn scaled(&self, factor: f64) -> NoiseModel {
        let clamp = |x: f64| (x * factor).clamp(0.0, 1.0);
        NoiseModel {
            one_qubit_depol: clamp(self.one_qubit_depol),
            two_qubit_depol: clamp(self.two_qubit_depol),
            readout_error: clamp(self.readout_error),
            idle_error: clamp(self.idle_error),
            label: format!("{} x{factor:.3}", self.label),
        }
    }

    /// Samples the post-gate error Paulis for a gate over `qubits`.
    ///
    /// Returns `(qubit, pauli)` pairs to apply after the ideal gate.
    pub fn sample_gate_errors(
        &self,
        gate: &Gate,
        qubits: &[usize],
        rng: &mut impl Rng,
    ) -> Vec<(usize, Pauli)> {
        let p = match gate.num_qubits() {
            1 => self.one_qubit_depol,
            _ => self.two_qubit_depol,
        };
        if p == 0.0 {
            return Vec::new();
        }
        let mut errors = Vec::new();
        for &q in qubits {
            if rng.gen_bool(p) {
                errors.push((q, Pauli::random(rng)));
            }
        }
        errors
    }

    /// Samples whether a readout of `value` is flipped.
    pub fn sample_readout(&self, value: bool, rng: &mut impl Rng) -> bool {
        if self.readout_error > 0.0 && rng.gen_bool(self.readout_error) {
            !value
        } else {
            value
        }
    }

    /// Samples idle errors across `num_qubits` qubits for one moment.
    pub fn sample_idle_errors(&self, num_qubits: usize, rng: &mut impl Rng) -> Vec<(usize, Pauli)> {
        if self.idle_error == 0.0 {
            return Vec::new();
        }
        let mut errors = Vec::new();
        for q in 0..num_qubits {
            if rng.gen_bool(self.idle_error) {
                // Idle noise is dephasing-dominated on hardware: bias to Z.
                let pauli = if rng.gen_bool(0.75) {
                    Pauli::Z
                } else {
                    Pauli::X
                };
                errors.push((q, pauli));
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_samples_nothing() {
        let nm = NoiseModel::ideal();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(nm.sample_gate_errors(&Gate::H, &[0], &mut rng).is_empty());
            assert!(nm.sample_readout(true, &mut rng));
            assert!(nm.sample_idle_errors(5, &mut rng).is_empty());
        }
    }

    #[test]
    fn depolarizing_rate_is_respected() {
        let nm = NoiseModel::uniform_depolarizing(0.25);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 40_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            hits += nm.sample_gate_errors(&Gate::H, &[0], &mut rng).len();
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn two_qubit_gates_use_two_qubit_rate() {
        let nm = NoiseModel {
            one_qubit_depol: 0.0,
            two_qubit_depol: 0.5,
            readout_error: 0.0,
            idle_error: 0.0,
            label: "test".into(),
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = 0usize;
        for _ in 0..10_000 {
            hits += nm.sample_gate_errors(&Gate::CX, &[0, 1], &mut rng).len();
        }
        // Expect ~0.5 errors per qubit x 2 qubits = ~1.0 per gate.
        let per_gate = hits as f64 / 10_000.0;
        assert!((per_gate - 1.0).abs() < 0.05, "observed {per_gate}");
    }

    #[test]
    fn readout_flip_rate() {
        let nm = NoiseModel {
            one_qubit_depol: 0.0,
            two_qubit_depol: 0.0,
            readout_error: 0.1,
            idle_error: 0.0,
            label: "test".into(),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let flips = (0..50_000)
            .filter(|_| !nm.sample_readout(true, &mut rng))
            .count();
        let rate = flips as f64 / 50_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn scaling_clamps_to_unit_interval() {
        let nm = NoiseModel::uniform_depolarizing(0.4).scaled(10.0);
        assert_eq!(nm.one_qubit_depol, 1.0);
        let small = NoiseModel::uniform_depolarizing(0.4).scaled(0.1);
        assert!((small.one_qubit_depol - 0.04).abs() < 1e-12);
    }

    #[test]
    fn pauli_random_covers_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(Pauli::random(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
