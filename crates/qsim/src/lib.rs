//! # qsim — quantum circuit simulators with noise
//!
//! Three complementary backends behind one dispatch layer, plus the noise
//! machinery the QEC experiments need:
//!
//! * [`backend`] — the unified simulation-backend layer: circuit
//!   classification (Clifford / general), the [`backend::Backend`] /
//!   [`backend::BackendState`] traits, auto-dispatch rules and the typed
//!   [`backend::SimError`] the fallible execution APIs return.
//! * [`state`] — a dense state-vector simulator (practical to ~20 qubits)
//!   used for semantic grading and the Deutsch–Jozsa noise experiments.
//! * [`kernels`] — the specialized gate-application kernels behind
//!   [`state::StateVector::apply_gate`]: strided base-index enumeration,
//!   diagonal/permutation fast paths, butterfly single-qubit updates, and a
//!   scratch-reusing general dense fallback.
//! * [`stabilizer`] — an Aaronson–Gottesman CHP tableau simulator for
//!   Clifford circuits, used for surface-code syndrome extraction at
//!   distances where the dense simulator is infeasible.
//! * [`mps`] — a matrix-product-state simulator with bounded bond
//!   dimension χ and truncated-SVD two-site updates, for low-entanglement
//!   *non-Clifford* circuits past the dense qubit cap.
//! * [`noise`] — Monte-Carlo Pauli/readout noise channels and the
//!   [`noise::NoiseModel`] aggregate.
//! * [`profiles`] — named noise profiles, including the IBM-Brisbane-like
//!   profile used by the Figure 4 reproduction.
//! * [`plan`] — the compile step: lowers a circuit once into a fused,
//!   matrix-precomputed [`plan::CircuitPlan`] (cost-model-gated up to 8×8
//!   superblocks), cached in a process-wide LRU keyed by circuit content
//!   hash, so repeated runs skip gate classification entirely.
//! * [`replay`] — the noisy twin of [`plan`]: per-gate kernels
//!   precompiled once and replayed in segments between noise insertion
//!   points, bit-identical to per-gate dispatch.
//! * [`exec`] — the circuit executor: shot sampling, trajectories,
//!   conditionals and mid-circuit measurement, driven by cached plans on
//!   both the noiseless and the noisy dense paths. Configured through the
//!   typed [`exec::ExecutorConfig`].
//! * [`job`] — the typed job vocabulary ([`job::JobSpec`] /
//!   [`job::JobStatus`] / [`job::JobResult`]) shared by in-process batch
//!   calls, the `qugen-serve` daemon and future shard coordinators, with
//!   the [`job::JobKey`] cache identity.
//! * [`dist`] — measurement-outcome distributions and distance metrics.
//! * [`word`] — the packed multi-word [`word::OutcomeWord`] classical
//!   registers those distributions are keyed on: allocation-free inline up
//!   to 64 bits, spilling to `[u64]` words beyond, so >64-clbit circuits
//!   (distance-7 QEC memory) record outcomes without a cap.
//!
//! # Example
//!
//! ```
//! use qcir::circuit::Circuit;
//! use qsim::exec::Executor;
//!
//! let mut bell = Circuit::new(2, 2);
//! bell.h(0).cx(0, 1).measure_all();
//!
//! let counts = Executor::ideal()
//!     .try_run(&bell, 4096, 7)
//!     .expect("2-qubit circuits always fit the dense backend");
//! // Only |00> and |11> appear.
//! assert_eq!(counts.distinct_outcomes(), 2);
//! ```

pub mod backend;
pub mod dist;
pub mod exec;
pub mod job;
pub mod kernels;
pub mod mps;
pub mod noise;
pub mod observable;
pub mod plan;
pub mod profiles;
pub mod replay;
pub mod stabilizer;
pub mod state;
pub mod word;

pub use backend::{BackendChoice, SimError};
pub use dist::Counts;
pub use exec::{Executor, ExecutorConfig};
pub use job::{JobKey, JobResult, JobSpec, JobStatus};
pub use noise::NoiseModel;
pub use state::StateVector;
pub use word::OutcomeWord;
