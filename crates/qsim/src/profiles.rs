//! Named noise profiles.
//!
//! The Figure 4 reproduction needs an "IBM Brisbane"-like environment. We
//! cannot query the real backend, so [`ibm_brisbane_like`] encodes effective
//! per-gate error rates of the same order as the published calibration data
//! for that 127-qubit Eagle device (median two-qubit error ~7.5e-3, readout
//! ~1.3e-2), inflated modestly to the *effective* circuit-level rates the
//! paper's histograms imply (their Fig 4(b) shows a visibly degraded
//! distribution on a 3-qubit circuit).

use crate::noise::NoiseModel;

/// The noiseless profile.
pub fn ideal() -> NoiseModel {
    NoiseModel::ideal()
}

/// An IBM-Brisbane-like effective noise profile.
pub fn ibm_brisbane_like() -> NoiseModel {
    NoiseModel {
        one_qubit_depol: 2.0e-3,
        two_qubit_depol: 2.0e-2,
        readout_error: 3.0e-2,
        idle_error: 4.0e-3,
        label: "ibm-brisbane-like".to_string(),
    }
}

/// A pessimistic near-term device (used by ablation benches).
pub fn noisy_nisq() -> NoiseModel {
    NoiseModel {
        one_qubit_depol: 1.0e-2,
        two_qubit_depol: 5.0e-2,
        readout_error: 5.0e-2,
        idle_error: 1.0e-2,
        label: "noisy-nisq".to_string(),
    }
}

/// Uniform depolarizing noise at rate `p` (QEC threshold studies).
pub fn depolarizing(p: f64) -> NoiseModel {
    NoiseModel::uniform_depolarizing(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brisbane_rates_are_ordered_sensibly() {
        let nm = ibm_brisbane_like();
        assert!(nm.two_qubit_depol > nm.one_qubit_depol);
        assert!(nm.readout_error > nm.two_qubit_depol);
        assert!(nm.is_noisy());
    }

    #[test]
    fn ideal_profile_is_noiseless() {
        assert!(!ideal().is_noisy());
    }

    #[test]
    fn nisq_is_noisier_than_brisbane() {
        assert!(noisy_nisq().two_qubit_depol > ibm_brisbane_like().two_qubit_depol);
    }
}
