//! Packed multi-word classical-outcome registers.
//!
//! [`OutcomeWord`] is the currency every simulation layer exchanges: the
//! stabilizer/dense/MPS trajectory loops write measurement bits into one,
//! [`crate::dist::Counts`] tallies them, the executor's parallel shot
//! chunks merge them, and `qec`'s space-time decoder unpacks them. It packs
//! classical bit `i` into bit `i % 64` of 64-bit word `i / 64`:
//!
//! * **Inline fast path** — registers of up to 64 bits live entirely in one
//!   inline `u64` (`rest` stays an empty, never-allocated `Vec`), so the
//!   ≤ 64-clbit shot-recording hot path is allocation-free (pinned by
//!   `crates/qsim/tests/alloc_counts.rs`).
//! * **Spill** — wider registers spill the bits past 64 into a little-endian
//!   `Vec<u64>` tail, which is what lets distance-7 surface-code memory
//!   circuits (97+ classical bits) record outcomes at all.
//!
//! The representation is *normalized*: the spill tail never ends in a zero
//! word. That makes the derived `Eq`/`Hash` agree with numeric equality and
//! lets [`Ord`] compare by tail length first — two properties the
//! `BTreeMap`-backed counts tables rely on.

use std::fmt;

/// A classical measurement-outcome register of arbitrary width.
///
/// Semantically an unsigned integer with classical bit `i` at bit `i`
/// (and therefore no intrinsic width: leading zero bits are not stored).
/// Display width is supplied at render time — see
/// [`OutcomeWord::bitstring`] and [`crate::dist::Counts::bitstring`], which
/// render most-significant-bit first, matching Qiskit's convention.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct OutcomeWord {
    /// Bits 0..64.
    head: u64,
    /// Bits 64.. in little-endian 64-bit words; invariant: no trailing
    /// zero word (so values ≤ 64 bits never allocate).
    rest: Vec<u64>,
}

impl OutcomeWord {
    /// The all-zero outcome.
    pub fn zero() -> Self {
        OutcomeWord::default()
    }

    /// Builds from a `u128` (handy for tests straddling the 64-bit
    /// boundary; kept off the `From` impls so unsuffixed integer literals
    /// at `Counts` call sites keep inferring `u64`).
    pub fn from_u128(value: u128) -> Self {
        OutcomeWord::from_words(&[value as u64, (value >> 64) as u64])
    }

    /// Builds from little-endian 64-bit words (word 0 = bits 0..64).
    pub fn from_words(words: &[u64]) -> Self {
        let mut w = OutcomeWord {
            head: words.first().copied().unwrap_or(0),
            rest: words.get(1..).unwrap_or(&[]).to_vec(),
        };
        w.trim();
        w
    }

    /// `true` when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.head == 0 && self.rest.is_empty()
    }

    /// The value of classical bit `i` (false past the stored width).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        if i < 64 {
            (self.head >> i) & 1 == 1
        } else {
            self.rest
                .get(i / 64 - 1)
                .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
        }
    }

    /// Sets classical bit `i` to `v`, spilling past 64 bits on demand.
    ///
    /// Clearing a bit re-trims the spill tail, so the normalized-form
    /// invariant (and with it `Eq`/`Hash`/`Ord` consistency) holds after
    /// every mutation. Clearing never shrinks the tail's *capacity*: a
    /// scratch word reused across trajectory shots settles at the widest
    /// register it has seen and stops allocating.
    #[inline]
    pub fn set_bit(&mut self, i: usize, v: bool) {
        if i < 64 {
            if v {
                self.head |= 1 << i;
            } else {
                self.head &= !(1 << i);
            }
            return;
        }
        let idx = i / 64 - 1;
        if v {
            if idx >= self.rest.len() {
                self.rest.resize(idx + 1, 0);
            }
            self.rest[idx] |= 1 << (i % 64);
        } else if let Some(w) = self.rest.get_mut(idx) {
            *w &= !(1 << (i % 64));
            self.trim();
        }
    }

    /// Clears every bit, keeping the spill tail's capacity (so a reused
    /// scratch word stays allocation-free across shots).
    pub fn clear(&mut self) {
        self.head = 0;
        self.rest.clear();
    }

    /// Overwrites the value with a one-word integer, keeping the spill
    /// tail's capacity (scratch-word twin of `From<u64>`).
    #[inline]
    pub fn assign_u64(&mut self, value: u64) {
        self.head = value;
        self.rest.clear();
    }

    /// The low 64 bits. For registers known to fit one word this *is* the
    /// value; prefer [`OutcomeWord::as_u64`] when that needs checking.
    #[inline]
    pub fn low64(&self) -> u64 {
        self.head
    }

    /// The full value when it fits 64 bits, else `None`.
    pub fn as_u64(&self) -> Option<u64> {
        self.rest.is_empty().then_some(self.head)
    }

    /// Number of stored 64-bit words (≥ 1; leading zero words trimmed).
    pub fn num_words(&self) -> usize {
        1 + self.rest.len()
    }

    /// Little-endian 64-bit word `j` (0 past the stored width).
    pub fn word(&self, j: usize) -> u64 {
        if j == 0 {
            self.head
        } else {
            self.rest.get(j - 1).copied().unwrap_or(0)
        }
    }

    /// Position of the highest set bit plus one (0 for the zero word).
    pub fn bit_len(&self) -> usize {
        match self.rest.last() {
            Some(&top) => 64 * self.rest.len() + 64 - top.leading_zeros() as usize,
            None => 64 - self.head.leading_zeros() as usize,
        }
    }

    /// Renders as an MSB-first bitstring of exactly `width` characters.
    ///
    /// # Panics
    ///
    /// Panics when the value does not fit `width` bits (that would silently
    /// drop set bits from the rendering).
    pub fn bitstring(&self, width: usize) -> String {
        assert!(
            self.bit_len() <= width,
            "outcome needs {} bits, rendering width is {width}",
            self.bit_len()
        );
        (0..width)
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }

    /// Parses an MSB-first bitstring (width = string length).
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0`/`1`.
    pub fn parse(bits: &str) -> Self {
        let width = bits.len();
        let mut word = OutcomeWord::zero();
        for (i, ch) in bits.chars().enumerate() {
            match ch {
                '0' => {}
                '1' => word.set_bit(width - 1 - i, true),
                other => panic!("invalid bitstring character `{other}`"),
            }
        }
        word
    }

    /// Drops trailing zero spill words (restores the normalized form).
    fn trim(&mut self) {
        while self.rest.last() == Some(&0) {
            self.rest.pop();
        }
    }
}

impl From<u64> for OutcomeWord {
    fn from(value: u64) -> Self {
        OutcomeWord {
            head: value,
            rest: Vec::new(),
        }
    }
}

// Deliberately NOT `From<u128>`: a second integer `From` impl would make
// unsuffixed literals at `Counts::record(0b11)`-style call sites ambiguous.

impl From<&OutcomeWord> for OutcomeWord {
    fn from(value: &OutcomeWord) -> Self {
        value.clone()
    }
}

impl PartialEq<u64> for OutcomeWord {
    fn eq(&self, other: &u64) -> bool {
        self.rest.is_empty() && self.head == *other
    }
}

impl PartialEq<OutcomeWord> for u64 {
    fn eq(&self, other: &OutcomeWord) -> bool {
        other == self
    }
}

impl Ord for OutcomeWord {
    /// Numeric order. Thanks to the no-trailing-zero invariant a longer
    /// spill tail always means a larger value; equal-length words compare
    /// most-significant-word down.
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inline-vs-inline is the counts-table hot path (every ≤ 64-clbit
        // shot recording walks a `BTreeMap<OutcomeWord, _>`): one integer
        // compare, no iterator machinery.
        if self.rest.is_empty() && other.rest.is_empty() {
            return self.head.cmp(&other.head);
        }
        self.rest
            .len()
            .cmp(&other.rest.len())
            .then_with(|| self.rest.iter().rev().cmp(other.rest.iter().rev()))
            .then_with(|| self.head.cmp(&other.head))
    }
}

impl PartialOrd for OutcomeWord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for OutcomeWord {
    /// Renders at the value's own minimum width (at least one digit);
    /// fixed-width contexts should use [`OutcomeWord::bitstring`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.bitstring(self.bit_len().max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_words_never_spill() {
        let mut w = OutcomeWord::from(u64::MAX);
        assert_eq!(w.num_words(), 1);
        assert_eq!(w.as_u64(), Some(u64::MAX));
        w.set_bit(63, false);
        assert_eq!(w, u64::MAX >> 1);
        assert_eq!(w.bit_len(), 63);
    }

    #[test]
    fn spill_and_retrim_across_the_64_bit_boundary() {
        let mut w = OutcomeWord::zero();
        w.set_bit(64, true);
        assert_eq!(w.num_words(), 2);
        assert!(w.bit(64));
        assert!(!w.bit(63));
        assert_eq!(w.as_u64(), None);
        assert_eq!(w.bit_len(), 65);
        // Clearing the only spilled bit restores the inline form.
        w.set_bit(64, false);
        assert!(w.is_zero());
        assert_eq!(w.num_words(), 1);
        assert_eq!(w, OutcomeWord::zero());
    }

    #[test]
    fn from_words_normalizes() {
        let w = OutcomeWord::from_words(&[5, 0, 0]);
        assert_eq!(w, 5u64);
        assert_eq!(w.num_words(), 1);
        assert_eq!(OutcomeWord::from_words(&[]), 0u64);
        let wide = OutcomeWord::from_words(&[1, 0, 7]);
        assert_eq!(wide.num_words(), 3);
        assert_eq!(wide.word(2), 7);
        assert_eq!(wide.word(9), 0);
    }

    #[test]
    fn ordering_is_numeric_across_representations() {
        let small = OutcomeWord::from(u64::MAX);
        let mut just_over = OutcomeWord::zero();
        just_over.set_bit(64, true);
        let big = OutcomeWord::from_u128(0x1_0000_0000_0000_0000_0000);
        assert!(small < just_over);
        assert!(just_over < big);
        let three = OutcomeWord::from(3u64);
        let two = OutcomeWord::from(2u64);
        assert!(three > two);
        // Same tail length: most-significant word dominates.
        let a = OutcomeWord::from_words(&[u64::MAX, 1]);
        let b = OutcomeWord::from_words(&[0, 2]);
        assert!(a < b);
    }

    #[test]
    fn u128_round_trips() {
        let v: u128 = 0xDEAD_BEEF_0123_4567_89AB_CDEF;
        let w = OutcomeWord::from_u128(v);
        assert_eq!(w.word(0), v as u64);
        assert_eq!(w.word(1), (v >> 64) as u64);
        for i in 0..128 {
            assert_eq!(w.bit(i), (v >> i) & 1 == 1, "bit {i}");
        }
    }

    #[test]
    fn bitstring_round_trips_msb_first() {
        let w = OutcomeWord::parse(
            "100000000000000000000000000000000000000000000000000000000000000001",
        );
        assert_eq!(w.bit_len(), 66);
        assert!(w.bit(0));
        assert!(w.bit(65));
        assert_eq!(OutcomeWord::parse(&w.bitstring(66)), w);
        assert_eq!(OutcomeWord::from(0b101u64).bitstring(5), "00101");
    }

    #[test]
    #[should_panic(expected = "rendering width")]
    fn bitstring_refuses_to_drop_bits() {
        OutcomeWord::from(0b100u64).bitstring(2);
    }

    #[test]
    fn display_uses_minimum_width() {
        assert_eq!(OutcomeWord::zero().to_string(), "0");
        assert_eq!(OutcomeWord::from(0b1010u64).to_string(), "1010");
    }

    #[test]
    fn clear_keeps_capacity_but_zeroes_value() {
        let mut w = OutcomeWord::from_u128(0x8000_0000_0000_0000_0000);
        w.clear();
        assert!(w.is_zero());
        assert_eq!(w, OutcomeWord::zero());
    }
}
