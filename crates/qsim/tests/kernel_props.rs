//! Property tests: every specialized kernel agrees with the generic dense
//! reference path on random states, gates, and operand orders, to 1e-12.

use proptest::prelude::*;
use qcir::gate::Gate;
use qcir::math::C64;
use qsim::state::StateVector;

const N: usize = 5;

/// Strategy: an arbitrary gate covering every dispatch tier (identity,
/// diagonal, permutation, butterfly, controlled, three-qubit).
fn arb_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::Id),
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::T),
        Just(Gate::Tdg),
        Just(Gate::SX),
        (-6.3f64..6.3).prop_map(Gate::RX),
        (-6.3f64..6.3).prop_map(Gate::RY),
        (-6.3f64..6.3).prop_map(Gate::RZ),
        (-6.3f64..6.3).prop_map(Gate::P),
        (-3.2f64..3.2, -3.2f64..3.2, -3.2f64..3.2).prop_map(|(t, p, l)| Gate::U(t, p, l)),
        Just(Gate::CX),
        Just(Gate::CY),
        Just(Gate::CZ),
        Just(Gate::CH),
        Just(Gate::SWAP),
        (-6.3f64..6.3).prop_map(Gate::CRX),
        (-6.3f64..6.3).prop_map(Gate::CRY),
        (-6.3f64..6.3).prop_map(Gate::CRZ),
        (-6.3f64..6.3).prop_map(Gate::CP),
        Just(Gate::CCX),
        Just(Gate::CSWAP),
    ]
}

/// Strategy: a random (unnormalized) amplitude vector over `N` qubits; the
/// `StateVector` constructor normalizes it.
fn arb_amps() -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| C64::new(re, im)),
        1 << N,
    )
}

/// Strategy: a permutation seed used to pick distinct operand qubits.
fn arb_operands() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..N, 3)
}

/// Builds distinct operand qubits from the raw draw, wrapping duplicates to
/// the next free qubit so every draw yields a valid operand list.
fn distinct_operands(raw: &[usize], arity: usize) -> Vec<usize> {
    let mut qubits: Vec<usize> = Vec::with_capacity(arity);
    for &r in raw.iter().take(arity) {
        let mut q = r;
        while qubits.contains(&q) {
            q = (q + 1) % N;
        }
        qubits.push(q);
    }
    qubits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The tentpole invariant: kernel dispatch and the full-scan dense
    /// oracle produce identical amplitudes (1e-12) for every gate, state,
    /// and operand order.
    #[test]
    fn kernels_agree_with_dense_reference(
        gate in arb_gate(),
        amps in arb_amps(),
        raw_ops in arb_operands(),
    ) {
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let qubits = distinct_operands(&raw_ops, gate.num_qubits());

        let mut fast = StateVector::from_amplitudes(amps.clone());
        fast.apply_gate(gate, &qubits);

        let mut oracle = StateVector::from_amplitudes(amps);
        oracle.apply_matrix_reference(&gate.matrix(), &qubits);

        for (i, (a, b)) in fast
            .amplitudes()
            .iter()
            .zip(oracle.amplitudes())
            .enumerate()
        {
            prop_assert!(
                a.approx_eq(*b, 1e-12),
                "{gate:?} on {qubits:?}: amplitude {i} diverged: {a} vs {b}"
            );
        }
    }

    /// `apply_matrix` (general kernel) agrees with the reference on dense
    /// multi-qubit matrices built from gate products.
    #[test]
    fn general_kernel_agrees_with_dense_reference(
        g1 in arb_gate(),
        g2 in arb_gate(),
        amps in arb_amps(),
        raw_ops in arb_operands(),
    ) {
        prop_assume!(g1.num_qubits() == 1 && g2.num_qubits() == 1);
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let matrix = g1.matrix().kron(&g2.matrix());
        let qubits = distinct_operands(&raw_ops, 2);

        let mut fast = StateVector::from_amplitudes(amps.clone());
        fast.apply_matrix(&matrix, &qubits);

        let mut oracle = StateVector::from_amplitudes(amps);
        oracle.apply_matrix_reference(&matrix, &qubits);

        for (a, b) in fast.amplitudes().iter().zip(oracle.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    /// prob_one's strided sum matches a naive full-vector filter.
    #[test]
    fn prob_one_matches_naive_filter(amps in arb_amps(), qubit in 0..N) {
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let sv = StateVector::from_amplitudes(amps);
        let naive: f64 = sv
            .amplitudes()
            .iter()
            .enumerate()
            .filter(|(i, _)| i & (1 << qubit) != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        prop_assert!((sv.prob_one(qubit) - naive).abs() < 1e-12);
    }
}
