//! Property tests: every specialized kernel agrees with the generic dense
//! reference path on random states, gates, and operand orders, to 1e-12.

use proptest::prelude::*;
use qcir::gate::Gate;
use qcir::math::{Matrix, C64};
use qsim::kernels;
use qsim::state::StateVector;

const N: usize = 5;

/// Strategy: an arbitrary gate covering every dispatch tier (identity,
/// diagonal, permutation, butterfly, controlled, three-qubit).
fn arb_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::Id),
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::T),
        Just(Gate::Tdg),
        Just(Gate::SX),
        (-6.3f64..6.3).prop_map(Gate::RX),
        (-6.3f64..6.3).prop_map(Gate::RY),
        (-6.3f64..6.3).prop_map(Gate::RZ),
        (-6.3f64..6.3).prop_map(Gate::P),
        (-3.2f64..3.2, -3.2f64..3.2, -3.2f64..3.2).prop_map(|(t, p, l)| Gate::U(t, p, l)),
        Just(Gate::CX),
        Just(Gate::CY),
        Just(Gate::CZ),
        Just(Gate::CH),
        Just(Gate::SWAP),
        (-6.3f64..6.3).prop_map(Gate::CRX),
        (-6.3f64..6.3).prop_map(Gate::CRY),
        (-6.3f64..6.3).prop_map(Gate::CRZ),
        (-6.3f64..6.3).prop_map(Gate::CP),
        Just(Gate::CCX),
        Just(Gate::CSWAP),
    ]
}

/// Strategy: a random (unnormalized) amplitude vector over `N` qubits; the
/// `StateVector` constructor normalizes it.
fn arb_amps() -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| C64::new(re, im)),
        1 << N,
    )
}

/// Strategy: a permutation seed used to pick distinct operand qubits.
fn arb_operands() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..N, 3)
}

/// Builds distinct operand qubits from the raw draw, wrapping duplicates to
/// the next free qubit so every draw yields a valid operand list.
fn distinct_operands(raw: &[usize], arity: usize) -> Vec<usize> {
    let mut qubits: Vec<usize> = Vec::with_capacity(arity);
    for &r in raw.iter().take(arity) {
        let mut q = r;
        while qubits.contains(&q) {
            q = (q + 1) % N;
        }
        qubits.push(q);
    }
    qubits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The tentpole invariant: kernel dispatch and the full-scan dense
    /// oracle produce identical amplitudes (1e-12) for every gate, state,
    /// and operand order.
    #[test]
    fn kernels_agree_with_dense_reference(
        gate in arb_gate(),
        amps in arb_amps(),
        raw_ops in arb_operands(),
    ) {
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let qubits = distinct_operands(&raw_ops, gate.num_qubits());

        let mut fast = StateVector::from_amplitudes(amps.clone());
        fast.apply_gate(gate, &qubits);

        let mut oracle = StateVector::from_amplitudes(amps);
        oracle.apply_matrix_reference(&gate.matrix(), &qubits);

        for (i, (a, b)) in fast
            .amplitudes()
            .iter()
            .zip(oracle.amplitudes())
            .enumerate()
        {
            prop_assert!(
                a.approx_eq(*b, 1e-12),
                "{gate:?} on {qubits:?}: amplitude {i} diverged: {a} vs {b}"
            );
        }
    }

    /// `apply_matrix` (general kernel) agrees with the reference on dense
    /// multi-qubit matrices built from gate products.
    #[test]
    fn general_kernel_agrees_with_dense_reference(
        g1 in arb_gate(),
        g2 in arb_gate(),
        amps in arb_amps(),
        raw_ops in arb_operands(),
    ) {
        prop_assume!(g1.num_qubits() == 1 && g2.num_qubits() == 1);
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let matrix = g1.matrix().kron(&g2.matrix());
        let qubits = distinct_operands(&raw_ops, 2);

        let mut fast = StateVector::from_amplitudes(amps.clone());
        fast.apply_matrix(&matrix, &qubits);

        let mut oracle = StateVector::from_amplitudes(amps);
        oracle.apply_matrix_reference(&matrix, &qubits);

        for (a, b) in fast.amplitudes().iter().zip(oracle.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    /// The `Dense3` superblock kernel agrees with the dense reference for
    /// arbitrary (possibly sparse) 8x8 products of single-qubit factors on
    /// every sorted qubit triple — covering both AVX2 variants (`q0 == 0`
    /// tiles and `q0 >= 1` lanes) and the scalar zero-skipping fallback.
    #[test]
    fn dense3_kernel_agrees_with_dense_reference(
        g2 in arb_gate(),
        g1 in arb_gate(),
        g0 in arb_gate(),
        amps in arb_amps(),
        raw_ops in arb_operands(),
    ) {
        prop_assume!(g2.num_qubits() == 1 && g1.num_qubits() == 1 && g0.num_qubits() == 1);
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let mut qubits = distinct_operands(&raw_ops, 3);
        qubits.sort_unstable_by(|a, b| b.cmp(a)); // q2 > q1 > q0
        let (q2, q1, q0) = (qubits[0], qubits[1], qubits[2]);
        let matrix = g2.matrix().kron(&g1.matrix()).kron(&g0.matrix());
        let mut m = [C64::ZERO; 64];
        for (i, mi) in m.iter_mut().enumerate() {
            *mi = matrix.get(i / 8, i % 8);
        }

        let mut fast = StateVector::from_amplitudes(amps.clone()).amplitudes().to_vec();
        kernels::apply_dense3(&mut fast, q2, q1, q0, &m);

        let mut oracle = StateVector::from_amplitudes(amps);
        oracle.apply_matrix_reference(&matrix, &[q2, q1, q0]);

        for (i, (a, b)) in fast.iter().zip(oracle.amplitudes()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-12),
                "dense3 on ({q2},{q1},{q0}): amplitude {i} diverged: {a} vs {b}"
            );
        }
    }

    /// `apply_diag1` with arbitrary (non-gate) diagonal factors agrees with
    /// the dense reference — exercising both the phase-only (`d0 == 1`)
    /// skip path and the general two-factor path in each dispatch tier.
    #[test]
    fn diag1_kernel_agrees_with_dense_reference(
        amps in arb_amps(),
        qubit in 0..N,
        d in (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
        phase_only in (0usize..2).prop_map(|b| b == 1),
    ) {
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let d0 = if phase_only { C64::ONE } else { C64::new(d.0, d.1) };
        let d1 = C64::new(d.2, 1.0 - d.2);
        let z = C64::ZERO;
        let matrix = Matrix::from_rows(2, &[d0, z, z, d1]);

        let mut fast = StateVector::from_amplitudes(amps.clone()).amplitudes().to_vec();
        kernels::apply_diag1(&mut fast, qubit, d0, d1);

        let mut oracle = StateVector::from_amplitudes(amps);
        oracle.apply_matrix_reference(&matrix, &[qubit]);

        for (a, b) in fast.iter().zip(oracle.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    /// `apply_diag2` with arbitrary four-factor diagonals (including exact
    /// ones, which the scalar tier skips) agrees with the dense reference
    /// for both operand orders.
    #[test]
    fn diag2_kernel_agrees_with_dense_reference(
        amps in arb_amps(),
        raw_ops in arb_operands(),
        raw_d in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0, 0usize..2), 4),
    ) {
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let qubits = distinct_operands(&raw_ops, 2);
        let (hi, lo) = (qubits[0], qubits[1]);
        let mut d = [C64::ZERO; 4];
        for (dk, &(re, im, one)) in d.iter_mut().zip(&raw_d) {
            *dk = if one == 1 { C64::ONE } else { C64::new(re, im) };
        }
        let z = C64::ZERO;
        #[rustfmt::skip]
        let matrix = Matrix::from_rows(4, &[
            d[0], z, z, z,
            z, d[1], z, z,
            z, z, d[2], z,
            z, z, z, d[3],
        ]);

        let mut fast = StateVector::from_amplitudes(amps.clone()).amplitudes().to_vec();
        kernels::apply_diag2(&mut fast, hi, lo, &d);

        let mut oracle = StateVector::from_amplitudes(amps);
        // Big-endian reference operands: `hi` is the matrix MSB, matching
        // the kernel's `d[(hi_bit << 1) | lo_bit]` convention.
        oracle.apply_matrix_reference(&matrix, &[hi, lo]);

        for (a, b) in fast.iter().zip(oracle.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "diag2 on ({hi},{lo}): {a} vs {b}"
            );
        }
    }

    /// prob_one's strided sum matches a naive full-vector filter.
    #[test]
    fn prob_one_matches_naive_filter(amps in arb_amps(), qubit in 0..N) {
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        prop_assume!(norm_sqr > 1e-6);
        let sv = StateVector::from_amplitudes(amps);
        let naive: f64 = sv
            .amplitudes()
            .iter()
            .enumerate()
            .filter(|(i, _)| i & (1 << qubit) != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        prop_assert!((sv.prob_one(qubit) - naive).abs() < 1e-12);
    }
}
