//! Property tests for the multi-word outcome-register layer.
//!
//! The generators deliberately straddle the 64/65/128-bit boundaries,
//! because that is where the inline-vs-spill representation split lives:
//! a bug in spill/trim/normalization shows up exactly at widths 63–66 and
//! 127–129, not at width 8.
//!
//! * Bitstring render/parse round-trips at every width, and the rendering
//!   is MSB-first (classical bit 0 = rightmost character).
//! * `Ord` is numeric: it agrees with comparing the MSB-first bitstrings
//!   padded to a common width, across representation boundaries.
//! * `Counts::merge` is order-independent: any chunking and permutation of
//!   a shot stream merges to the same table — the property the parallel
//!   executor's deterministic chunk merge rests on — including mixed
//!   inline/spilled outcome sets.

use proptest::prelude::*;
use qsim::dist::Counts;
use qsim::word::OutcomeWord;

/// Widths hugging the one-word and two-word boundaries.
fn arb_width() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        60usize..=66,
        Just(100usize),
        126usize..=129,
        Just(160usize),
    ]
}

/// Raw set-bit positions; callers reduce them modulo the width under test.
fn arb_raw_bits() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..4096, 0..12)
}

fn word_of(width: usize, raw_bits: &[usize]) -> OutcomeWord {
    let mut w = OutcomeWord::zero();
    for &b in raw_bits {
        w.set_bit(b % width, true);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitstring_round_trips_at_any_width(
        width in arb_width(),
        raw in arb_raw_bits(),
    ) {
        let word = word_of(width, &raw);
        let rendered = word.bitstring(width);
        prop_assert_eq!(rendered.len(), width);
        // MSB-first: bit i is character width-1-i.
        for i in 0..width {
            let ch = rendered.as_bytes()[width - 1 - i];
            prop_assert_eq!(ch == b'1', word.bit(i), "bit {}", i);
        }
        prop_assert_eq!(OutcomeWord::parse(&rendered), word);
    }

    #[test]
    fn ordering_matches_padded_bitstring_order(
        width in arb_width(),
        raw_a in arb_raw_bits(),
        raw_b in arb_raw_bits(),
    ) {
        let wa = word_of(width, &raw_a);
        let wb = word_of(width, &raw_b);
        // MSB-first fixed-width strings order lexicographically exactly
        // like the numbers they encode.
        let sa = wa.bitstring(width);
        let sb = wb.bitstring(width);
        prop_assert_eq!(wa.cmp(&wb), sa.cmp(&sb));
        prop_assert_eq!(wa == wb, sa == sb);
        if let (Some(ua), Some(ub)) = (wa.as_u64(), wb.as_u64()) {
            prop_assert_eq!(wa.cmp(&wb), ua.cmp(&ub));
        }
    }

    #[test]
    fn merge_is_chunking_and_order_independent(
        width in arb_width(),
        shots in prop::collection::vec(arb_raw_bits(), 1..40),
        chunk in 1usize..7,
        rotate in 0usize..40,
    ) {
        let words: Vec<OutcomeWord> = shots.iter().map(|b| word_of(width, b)).collect();
        // Reference: record everything serially.
        let mut serial = Counts::new(width);
        for w in &words {
            serial.record_word(w);
        }
        // Rechunked + rotated: merge partial tables in a different order.
        let mut rotated = words.clone();
        let len = rotated.len();
        rotated.rotate_left(rotate % len);
        let mut merged = Counts::new(width);
        for part in rotated.chunks(chunk) {
            let mut partial = Counts::new(width);
            for w in part {
                partial.record_word(w);
            }
            merged.merge(&partial);
        }
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.shots(), words.len() as u64);
        // Spot-check per-word counts through the query API.
        for w in &words {
            let expected = words.iter().filter(|x| *x == w).count() as u64;
            prop_assert_eq!(serial.count_word(w), expected);
        }
    }
}

#[test]
fn boundary_words_are_distinct_and_ordered() {
    // 2^63 < 2^64 - 1 < 2^64 < 2^64 + 1 < 2^65 < 2^127 < 2^128: strictly
    // increasing across the representation split (one word → two words →
    // three words), with the expected word counts.
    let bit = |b: usize| {
        let mut w = OutcomeWord::zero();
        w.set_bit(b, true);
        w
    };
    let mut two_sixtyfour_plus_one = bit(64);
    two_sixtyfour_plus_one.set_bit(0, true);
    let all = [
        bit(63),
        OutcomeWord::from(u64::MAX),
        bit(64),
        two_sixtyfour_plus_one,
        bit(65),
        bit(127),
        bit(128),
    ];
    for pair in all.windows(2) {
        assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
    }
    assert_eq!(all[1].num_words(), 1);
    assert_eq!(all[2].num_words(), 2);
    assert_eq!(all[6].num_words(), 3);
}
