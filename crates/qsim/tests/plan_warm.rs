//! Regression tests: warm cached-plan execution stays off the slow paths.
//!
//! Two properties of the compile step are pinned here, via a counting
//! global allocator and the debug-only [`Gate::kind`] call counter:
//!
//! 1. **Zero `kind()` calls on warm runs.** Gate classification (which
//!    recomputes `sin`/`cos`/`exp` matrix entries) happens once at plan
//!    compile time; replaying a cached plan performs no classification at
//!    all.
//! 2. **Zero heap allocations in the per-shot replay loop** for ≤ 64-clbit
//!    registers: the reused state vector, the precompiled op list and the
//!    inline outcome word mean a warm trajectory is pure arithmetic.
//!
//! Kept as its own integration binary (single test) so no concurrent test
//! thread can allocate — or classify gates — while the counters are read.

use qcir::circuit::Circuit;
use qcir::gate::Gate;
use qsim::dist::Counts;
use qsim::exec::{ExecutorConfig, PlanCacheMode};
use qsim::state::StateVector;
use qsim::word::OutcomeWord;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator and counts allocation calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A mid-circuit-measurement workload (so executor runs take the per-shot
/// plan-replay path, not the sampling path) mixing every kernel tier.
fn workload() -> Circuit {
    let mut qc = Circuit::new(6, 6);
    qc.h(0).t(0).cx(0, 1).cz(1, 2).swap(2, 3);
    qc.rz(0.37, 3).push_gate(Gate::CH, &[3, 4]).ccx(0, 1, 5);
    qc.measure(0, 0);
    qc.cond_gate(Gate::X, &[1], 0, true);
    qc.h(4).cx(4, 5);
    for q in 0..6 {
        qc.measure(q, q);
    }
    qc
}

#[test]
fn warm_cached_plan_runs_skip_classification_and_allocation() {
    // Telemetry fully on — metrics recording AND an active trace sink —
    // so the zero-allocation assertion below also pins the observability
    // layer's hot-path contract: kernel tier counters are relaxed
    // `fetch_add`s on preallocated atomics, and the shot loop contains
    // no span, so even a live sink costs it nothing.
    qugen_telemetry::metrics::set_enabled(true);
    let _trace_buffer = qugen_telemetry::trace::install_capture();

    let qc = workload();
    let exec = ExecutorConfig::new()
        .plan_cache(PlanCacheMode::Private)
        .build();

    // Cold: compiles the plan (classifying each gate exactly once there).
    let cold = exec.try_run(&qc, 64, 5).unwrap();
    assert_eq!(cold.shots(), 64);

    // Warm executor runs perform zero `Gate::kind` calls: every matrix and
    // kernel choice was frozen into the cached plan. (The counter only
    // exists in debug builds; release builds compile the shim out.)
    #[cfg(debug_assertions)]
    {
        qcir::gate::kind_stats::reset();
        let warm = exec.try_run(&qc, 64, 6).unwrap();
        assert_eq!(warm.shots(), 64);
        assert_eq!(
            qcir::gate::kind_stats::calls(),
            0,
            "a warm cached-plan run re-classified gates"
        );
    }

    // The per-shot replay loop — reinit, replay precompiled ops, measure,
    // record — allocates nothing once the state, RNG chunk and counts
    // table are warm. Drive the loop exactly as `run_task` does, with the
    // executor-owned pieces preallocated.
    let plan = exec.plan_for(&qc);
    let mut sv = StateVector::zero(qc.num_qubits());
    let mut counts = Counts::new(qc.num_clbits());
    let mut word = OutcomeWord::zero();
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..64 {
        plan.run_trajectory(&mut sv, &mut rng, &mut word);
        counts.record_word(&word);
    }

    // The harness's own runtime occasionally allocates on another thread
    // while we measure, so take the minimum over several attempts: the
    // loop is deterministic, so if ANY attempt observes zero allocations
    // the hot path itself is allocation-free.
    let mut min_allocs = usize::MAX;
    for _attempt in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..64 {
            plan.run_trajectory(&mut sv, &mut rng, &mut word);
            counts.record_word(&word);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_allocs = min_allocs.min(after - before);
    }
    assert_eq!(
        min_allocs, 0,
        "warm cached-plan shots allocated {min_allocs} time(s) with telemetry enabled"
    );
    assert_eq!(word.num_words(), 1, "inline outcome representation in play");

    // The instrumentation was genuinely live while the loop ran, not
    // compiled away: the kernel dispatch-tier counters moved.
    let tier_counts: u64 = [
        "kernels.butterfly1_avx2",
        "kernels.butterfly1_scalar",
        "kernels.dense2_avx2",
        "kernels.dense2_scalar",
    ]
    .iter()
    .map(|name| qugen_telemetry::metrics::counter(name).get())
    .sum::<u64>();
    assert!(tier_counts > 0, "kernel tier counters never advanced");
    qugen_telemetry::trace::disable();
}
