//! Throwaway probe (not part of the PR): does the reported truncation
//! error bound actually dominate the true infidelity on random circuits?

use qcir::circuit::Circuit;
use qsim::exec::Executor;
use qsim::mps::MpsState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn evolve_mps(qc: &Circuit, max_bond: usize) -> MpsState {
    let mut mps = MpsState::new(qc.num_qubits(), max_bond);
    for op in qc.ops() {
        if let qcir::circuit::Op::Gate { gate, qubits } = op {
            mps.apply_gate(*gate, qubits);
        }
    }
    mps
}

#[test]
fn probe_bound_violations() {
    let n = 8;
    let mut worst: f64 = 0.0;
    let mut violations = 0;
    for seed in 0..4000u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut qc = Circuit::new(n, 0);
        for _ in 0..40 {
            match rng.gen_range(0..5) {
                0 => {
                    qc.h(rng.gen_range(0..n));
                }
                1 => {
                    qc.t(rng.gen_range(0..n));
                }
                2 => {
                    qc.ry(rng.gen_range(-2.0..2.0), rng.gen_range(0..n));
                }
                3 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    qc.cx(a, b);
                }
                _ => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    qc.cp(rng.gen_range(-2.0..2.0), a, b);
                }
            }
        }
        for chi in [2usize, 3, 4] {
            let mps = evolve_mps(&qc, chi);
            let bound = mps.truncation_error_bound();
            if bound >= 1.0 - 1e-12 {
                continue; // clamped bound is trivially satisfied
            }
            let dense = Executor::statevector(&qc);
            let infidelity = 1.0 - mps.to_statevector().fidelity(&dense);
            if infidelity > bound + 1e-9 {
                violations += 1;
                let excess = infidelity - bound;
                if excess > worst {
                    worst = excess;
                    eprintln!(
                        "seed {seed} chi {chi}: infidelity {infidelity:.6} > bound {bound:.6}"
                    );
                }
            }
        }
    }
    eprintln!("violations: {violations}, worst excess: {worst:.6}");
}
