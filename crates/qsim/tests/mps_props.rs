//! Property tests for the MPS engine's SVD/truncation internals.
//!
//! * At χ = 2^⌊n/2⌋ no truncation can occur, so the contracted MPS must
//!   reproduce `Executor::statevector` amplitude-for-amplitude (1e-10) on
//!   random ≤10-qubit circuits — phases included, since the two-site SVD
//!   split reconstructs the block exactly.
//! * At small χ truncation does occur, and the engine's reported error
//!   bound `(Σ√(2δ))²` must dominate the *actual* infidelity against the
//!   exact dense evolution (the discarded-weight bound is rigorous:
//!   unitaries preserve norm distances, so per-truncation errors add at
//!   worst linearly in norm).

use proptest::prelude::*;
use qcir::circuit::Circuit;
use qsim::exec::Executor;
use qsim::mps::MpsState;

/// Encoded random op: (selector, qubit, offset, angle index).
fn arb_op() -> impl Strategy<Value = (u8, usize, usize, u8)> {
    (0u8..9, 0usize..16, 1usize..16, 0u8..8)
}

/// Builds a measurement-free circuit over `n` qubits from the op stream.
fn unitary_circuit(n: usize, ops: &[(u8, usize, usize, u8)]) -> Circuit {
    let mut qc = Circuit::new(n, 0);
    for &(sel, q, off, a) in ops {
        let q = q % n;
        let p = (q + off) % n;
        let angle = 0.3 + 0.4 * a as f64;
        match sel {
            0 => {
                qc.h(q);
            }
            1 => {
                qc.t(q);
            }
            2 => {
                qc.ry(angle, q);
            }
            3 => {
                qc.rz(-angle, q);
            }
            4 => {
                qc.u(angle, 0.2, -0.8, q);
            }
            5 if p != q => {
                qc.cx(q, p);
            }
            6 if p != q => {
                qc.cp(angle, q, p);
            }
            7 if p != q => {
                qc.swap(q, p);
            }
            8 => {
                let r = (q + 1) % n;
                if r != q && r != p && p != q {
                    qc.ccx(q, p, r);
                }
            }
            _ => {}
        }
    }
    qc
}

/// Evolves the circuit on a fresh MPS at the given bond bound.
fn evolve_mps(qc: &Circuit, max_bond: usize) -> MpsState {
    let mut mps = MpsState::new(qc.num_qubits(), max_bond);
    for op in qc.ops() {
        if let qcir::circuit::Op::Gate { gate, qubits } = op {
            mps.apply_gate(*gate, qubits);
        }
    }
    mps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Untruncated MPS evolution matches the dense state vector exactly
    /// (amplitudes to 1e-10, not just probabilities).
    #[test]
    fn untruncated_mps_matches_statevector_amplitudes(
        n in 2usize..=10,
        ops in prop::collection::vec(arb_op(), 0..40),
    ) {
        let qc = unitary_circuit(n, &ops);
        let chi = 1usize << (n / 2);
        let mps = evolve_mps(&qc, chi);
        prop_assert!(
            mps.discarded_weight() < 1e-18,
            "χ = 2^(n/2) must never truncate, discarded {}",
            mps.discarded_weight()
        );
        let dense = Executor::statevector(&qc);
        let contracted = mps.to_statevector();
        for (i, (a, b)) in contracted
            .amplitudes()
            .iter()
            .zip(dense.amplitudes())
            .enumerate()
        {
            prop_assert!(a.approx_eq(*b, 1e-10), "amplitude {i}: {a} vs {b}");
        }
    }

    /// Truncated runs report an error bound that dominates the actual
    /// infidelity against the exact evolution.
    #[test]
    fn truncated_runs_respect_the_discarded_weight_bound(
        ops in prop::collection::vec(arb_op(), 10..60),
        chi in 2usize..4,
    ) {
        let n = 8;
        let qc = unitary_circuit(n, &ops);
        let mps = evolve_mps(&qc, chi);
        let bound = mps.truncation_error_bound();
        // The bound dominates the discarded-weight sum (both clamp at 1,
        // a fully-lost state).
        prop_assert!(bound >= mps.discarded_weight().min(1.0) - 1e-15);
        let dense = Executor::statevector(&qc);
        let infidelity = 1.0 - mps.to_statevector().fidelity(&dense);
        prop_assert!(
            infidelity <= bound + 1e-9,
            "infidelity {infidelity} exceeds reported bound {bound} (χ = {chi})"
        );
    }
}

#[test]
fn bound_is_tight_enough_to_be_useful() {
    // A single truncation event: Bell pair at χ = 1 discards exactly half
    // the weight, and the bound (√(2·½))² = 1 reflects a fully-lost state
    // while the infidelity is 0.5 — bound ≥ actual, finite, and ordered.
    let mut qc = Circuit::new(2, 0);
    qc.h(0).cx(0, 1);
    let mps = evolve_mps(&qc, 1);
    assert!((mps.discarded_weight() - 0.5).abs() < 1e-12);
    let dense = Executor::statevector(&qc);
    let infidelity = 1.0 - mps.to_statevector().fidelity(&dense);
    assert!((infidelity - 0.5).abs() < 1e-9);
    assert!(mps.truncation_error_bound() >= infidelity);
}
