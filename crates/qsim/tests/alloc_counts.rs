//! Regression test: recording shots into a ≤ 64-clbit `Counts` table is
//! allocation-free on the warm path, via a counting global allocator.
//!
//! The multi-word `OutcomeWord` keeps one-word registers on an inline
//! representation whose spill tail is an empty, never-allocated `Vec`, so
//! the executor's per-shot record loop — clear the scratch word, set
//! measurement bits, `record_word` into the table — performs zero heap
//! allocations once every distinct outcome has its table node. This test
//! pins that property so a future refactor of the outcome-register layer
//! cannot quietly put an allocation back on the shot hot path.
//!
//! Kept as its own integration binary (single test) so no concurrent test
//! thread can allocate while the counter is being read.

use qsim::dist::Counts;
use qsim::word::OutcomeWord;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator and counts allocation calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One synthetic "shot": writes a 64-bit-wide outcome into the scratch
/// word exactly the way the trajectory loop does (clear, then per-bit
/// `set_bit` including explicit false writes for measured zeros).
fn write_shot(word: &mut OutcomeWord, shot: u64) {
    word.clear();
    for bit in 0..64usize {
        word.set_bit(bit, (shot >> (bit % 8)) & 1 == 1);
    }
}

#[test]
fn recording_64bit_shots_allocates_nothing_after_warmup() {
    let mut counts = Counts::new(64);
    let mut word = OutcomeWord::zero();

    // Warm up: every distinct outcome gets its table node, and the
    // fixed-seed `record(u64)` path is exercised once too.
    for shot in 0..256u64 {
        write_shot(&mut word, shot);
        counts.record_word(&word);
        counts.record(shot);
    }

    // The harness's own runtime occasionally allocates on another thread
    // while we measure, so take the minimum over several attempts: the
    // record loop is deterministic, so if ANY attempt observes zero
    // allocations the hot path itself is allocation-free.
    let mut min_allocs = usize::MAX;
    for _attempt in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _round in 0..10 {
            for shot in 0..256u64 {
                write_shot(&mut word, shot);
                counts.record_word(&word);
                counts.record(shot);
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_allocs = min_allocs.min(after - before);
    }

    assert_eq!(
        min_allocs, 0,
        "≤64-clbit shot recording allocated {min_allocs} time(s) on the warm path"
    );
    assert_eq!(counts.shots(), 256 * 2 + 8 * 10 * 256 * 2);
    // Sanity: the inline representation really was in play (no spill).
    assert_eq!(word.num_words(), 1);
}
