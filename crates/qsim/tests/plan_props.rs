//! Property tests for the compile step: a fused [`CircuitPlan`] agrees
//! with the unfused per-gate kernel path to 1e-12 on random circuits —
//! including fusion across diagonal/dense/permutation tier boundaries —
//! and cached-plan executor runs are bit-identical to cold-plan runs.

use proptest::prelude::*;
use qcir::circuit::Circuit;
use qcir::gate::Gate;
use qsim::exec::{ExecutorConfig, PlanCacheMode};
use qsim::noise::NoiseModel;
use qsim::plan::{CircuitPlan, PlannedOp};
use qsim::state::StateVector;

/// Strategy: an arbitrary gate covering every dispatch tier, so fused
/// blocks routinely straddle diagonal (T/Z/RZ/CZ/CP), dense (H/U/CH) and
/// permutation (X/CX/SWAP/CCX) boundaries.
fn arb_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::Id),
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::T),
        Just(Gate::Tdg),
        Just(Gate::SX),
        (-6.3f64..6.3).prop_map(Gate::RX),
        (-6.3f64..6.3).prop_map(Gate::RY),
        (-6.3f64..6.3).prop_map(Gate::RZ),
        (-6.3f64..6.3).prop_map(Gate::P),
        (-3.2f64..3.2, -3.2f64..3.2, -3.2f64..3.2).prop_map(|(t, p, l)| Gate::U(t, p, l)),
        Just(Gate::CX),
        Just(Gate::CY),
        Just(Gate::CZ),
        Just(Gate::CH),
        Just(Gate::SWAP),
        (-6.3f64..6.3).prop_map(Gate::CRX),
        (-6.3f64..6.3).prop_map(Gate::CRY),
        (-6.3f64..6.3).prop_map(Gate::CRZ),
        (-6.3f64..6.3).prop_map(Gate::CP),
        Just(Gate::CCX),
        Just(Gate::CSWAP),
    ]
}

/// Strategy: a gate list with raw operand draws (made distinct later).
fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<(Gate, Vec<usize>)>> {
    prop::collection::vec(
        (arb_gate(), prop::collection::vec(0..usize::MAX, 3)),
        0..max_len,
    )
}

/// Builds distinct operand qubits on `n` wires from the raw draw, wrapping
/// duplicates to the next free qubit so every draw is a valid operand list.
fn distinct_operands(raw: &[usize], arity: usize, n: usize) -> Vec<usize> {
    let mut qubits: Vec<usize> = Vec::with_capacity(arity);
    for &r in raw.iter().take(arity) {
        let mut q = r % n;
        while qubits.contains(&q) {
            q = (q + 1) % n;
        }
        qubits.push(q);
    }
    qubits
}

/// Builds the circuit a raw draw describes on `n` qubits.
fn build_circuit(n: usize, ops: &[(Gate, Vec<usize>)]) -> Circuit {
    let mut qc = Circuit::new(n, n);
    for (gate, raw) in ops {
        qc.push_gate(*gate, &distinct_operands(raw, gate.num_qubits(), n));
    }
    qc
}

/// Strategy: a diagonal-tier gate (Z/S/T/RZ/P and their controlled kin) —
/// circuits built only from these must never densify under the cost model.
fn arb_diag_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::T),
        Just(Gate::Tdg),
        (-6.3f64..6.3).prop_map(Gate::RZ),
        (-6.3f64..6.3).prop_map(Gate::P),
        Just(Gate::CZ),
        (-6.3f64..6.3).prop_map(Gate::CRZ),
        (-6.3f64..6.3).prop_map(Gate::CP),
    ]
}

/// A rotation brickwork circuit: per-layer random 1q rotations followed by
/// alternating nearest-neighbour CX bricks — the deep-circuit shape whose
/// qubit triples the fuser collapses into `Dense3` superblocks.
fn brickwork(n: usize, layers: usize, angles: &[f64]) -> Circuit {
    let mut qc = Circuit::new(n, n);
    let mut a = angles.iter().cycle();
    for layer in 0..layers {
        for q in 0..n {
            qc.rx(*a.next().unwrap(), q).rz(*a.next().unwrap(), q);
        }
        let start = layer % 2;
        for q in (start..n - 1).step_by(2) {
            qc.cx(q, q + 1);
        }
    }
    qc
}

/// Applies every unitary gate of `qc` through the per-gate kernel path.
fn apply_unfused(qc: &Circuit, sv: &mut StateVector) {
    for op in qc.ops() {
        if let qcir::circuit::Op::Gate { gate, qubits } = op {
            sv.apply_gate(*gate, qubits);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole invariant: the fused plan and the unfused per-gate
    /// kernel path produce identical amplitudes (1e-12) for random
    /// circuits up to 12 qubits, from multiple starting basis states.
    #[test]
    fn fused_plans_agree_with_unfused_kernels(
        n in 3usize..=12,
        ops in arb_ops(24),
    ) {
        let qc = build_circuit(n, &ops);
        let plan = CircuitPlan::compile(&qc);
        prop_assert!(plan.fused_unitaries() <= plan.source_gate_ops());
        for basis in [0usize, (1 << n) - 1, 1] {
            let mut fused = StateVector::basis(n, basis);
            plan.apply_unitary(&mut fused);
            let mut unfused = StateVector::basis(n, basis);
            for op in qc.ops() {
                if let qcir::circuit::Op::Gate { gate, qubits } = op {
                    unfused.apply_gate(*gate, qubits);
                }
            }
            for (i, (a, b)) in fused
                .amplitudes()
                .iter()
                .zip(unfused.amplitudes())
                .enumerate()
            {
                prop_assert!(
                    a.approx_eq(*b, 1e-12),
                    "{n} qubits, basis {basis}, amplitude {i} diverged: {a} vs {b}"
                );
            }
        }
    }

    /// Rotation brickwork forms `Dense3` superblocks, and the fused plan —
    /// including those 8x8 blocks — agrees with the unfused kernel path.
    #[test]
    fn dense3_superblocks_form_and_agree(
        n in 4usize..=9,
        layers in 3usize..=6,
        angles in prop::collection::vec(-3.2f64..3.2, 8),
    ) {
        let qc = brickwork(n, layers, &angles);
        let plan = CircuitPlan::compile(&qc);
        prop_assert!(
            plan.ops().iter().any(|op| matches!(op, PlannedOp::Dense3 { .. })),
            "{n}q x{layers} brickwork compiled without any Dense3 superblock"
        );
        for basis in [0usize, 1, (1 << n) - 1] {
            let mut fused = StateVector::basis(n, basis);
            plan.apply_unitary(&mut fused);
            let mut unfused = StateVector::basis(n, basis);
            apply_unfused(&qc, &mut unfused);
            for (i, (a, b)) in fused
                .amplitudes()
                .iter()
                .zip(unfused.amplitudes())
                .enumerate()
            {
                prop_assert!(
                    a.approx_eq(*b, 1e-12),
                    "{n}q x{layers}, basis {basis}, amplitude {i}: {a} vs {b}"
                );
            }
        }
    }

    /// Cost-model guardrail: circuits built purely from diagonal-tier
    /// gates never densify — every fused block stays `Diag1`/`Diag2` —
    /// and the (possibly decline-heavy) plan still agrees with the
    /// unfused path.
    #[test]
    fn diagonal_runs_stay_diagonal_under_the_cost_model(
        n in 3usize..=8,
        ops in prop::collection::vec(
            (arb_diag_gate(), prop::collection::vec(0..usize::MAX, 3)),
            1..24,
        ),
    ) {
        let qc = build_circuit(n, &ops);
        let plan = CircuitPlan::compile(&qc);
        for op in plan.ops() {
            prop_assert!(
                !matches!(
                    op,
                    PlannedOp::Dense1 { .. }
                        | PlannedOp::Dense2 { .. }
                        | PlannedOp::Dense3 { .. }
                ),
                "diagonal-only circuit densified into {op:?}"
            );
        }
        let mut fused = StateVector::basis(n, 1);
        let mut h_layer = Circuit::new(n, n);
        for q in 0..n {
            h_layer.h(q);
        }
        apply_unfused(&h_layer, &mut fused); // diagonal plans need superpositions
        let mut unfused = fused.clone();
        plan.apply_unitary(&mut fused);
        apply_unfused(&qc, &mut unfused);
        for (a, b) in fused.amplitudes().iter().zip(unfused.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    /// Compilation is deterministic: compiling the same circuit twice
    /// yields structurally equal plans with equal fingerprints, and a
    /// warm-cache executor run is bit-identical to the cold-cache run.
    #[test]
    fn cached_plan_runs_are_bit_identical_to_cold_runs(
        n in 3usize..=8,
        ops in arb_ops(16),
        seed in 0u64..1000,
    ) {
        let mut qc = build_circuit(n, &ops);
        qc.measure_all();
        let a = CircuitPlan::compile(&qc);
        let b = CircuitPlan::compile(&qc);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());

        let cold = ExecutorConfig::new()
            .plan_cache(PlanCacheMode::Private)
            .build()
            .try_run(&qc, 256, seed)
            .unwrap();
        let exec = ExecutorConfig::new()
            .plan_cache(PlanCacheMode::Private)
            .build();
        let _ = exec.plan_for(&qc); // pre-warm the cache
        let warm = exec.try_run(&qc, 256, seed).unwrap();
        prop_assert_eq!(cold, warm);
    }
}

proptest! {
    // Fewer cases: each case runs three full noisy Monte-Carlo batches
    // (2100 shots each, so every run spans multiple RNG chunks and the
    // thread-count comparison genuinely exercises the chunk merge).
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Noisy replay determinism: under a fully live noise model the
    /// replay path's counts are bit-identical across thread counts.
    #[test]
    fn noisy_replay_is_bit_identical_across_thread_counts(
        n in 2usize..=5,
        ops in arb_ops(10),
        seed in 0u64..1000,
    ) {
        let mut qc = build_circuit(n, &ops);
        qc.measure_all();
        let mut noise = NoiseModel::uniform_depolarizing(0.03);
        noise.idle_error = 0.01;
        noise.readout_error = 0.02;
        let run = |threads: usize| {
            ExecutorConfig::new()
                .noise(noise.clone())
                .threads(threads)
                .plan_cache(PlanCacheMode::Private)
                .build()
                .try_run(&qc, 2100, seed)
                .unwrap()
        };
        let serial = run(1);
        prop_assert_eq!(&serial, &run(3));
        prop_assert_eq!(&serial, &run(4));
    }
}
