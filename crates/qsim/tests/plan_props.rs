//! Property tests for the compile step: a fused [`CircuitPlan`] agrees
//! with the unfused per-gate kernel path to 1e-12 on random circuits —
//! including fusion across diagonal/dense/permutation tier boundaries —
//! and cached-plan executor runs are bit-identical to cold-plan runs.

use proptest::prelude::*;
use qcir::circuit::Circuit;
use qcir::gate::Gate;
use qsim::exec::{ExecutorConfig, PlanCacheMode};
use qsim::plan::CircuitPlan;
use qsim::state::StateVector;

/// Strategy: an arbitrary gate covering every dispatch tier, so fused
/// blocks routinely straddle diagonal (T/Z/RZ/CZ/CP), dense (H/U/CH) and
/// permutation (X/CX/SWAP/CCX) boundaries.
fn arb_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::Id),
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::T),
        Just(Gate::Tdg),
        Just(Gate::SX),
        (-6.3f64..6.3).prop_map(Gate::RX),
        (-6.3f64..6.3).prop_map(Gate::RY),
        (-6.3f64..6.3).prop_map(Gate::RZ),
        (-6.3f64..6.3).prop_map(Gate::P),
        (-3.2f64..3.2, -3.2f64..3.2, -3.2f64..3.2).prop_map(|(t, p, l)| Gate::U(t, p, l)),
        Just(Gate::CX),
        Just(Gate::CY),
        Just(Gate::CZ),
        Just(Gate::CH),
        Just(Gate::SWAP),
        (-6.3f64..6.3).prop_map(Gate::CRX),
        (-6.3f64..6.3).prop_map(Gate::CRY),
        (-6.3f64..6.3).prop_map(Gate::CRZ),
        (-6.3f64..6.3).prop_map(Gate::CP),
        Just(Gate::CCX),
        Just(Gate::CSWAP),
    ]
}

/// Strategy: a gate list with raw operand draws (made distinct later).
fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<(Gate, Vec<usize>)>> {
    prop::collection::vec(
        (arb_gate(), prop::collection::vec(0..usize::MAX, 3)),
        0..max_len,
    )
}

/// Builds distinct operand qubits on `n` wires from the raw draw, wrapping
/// duplicates to the next free qubit so every draw is a valid operand list.
fn distinct_operands(raw: &[usize], arity: usize, n: usize) -> Vec<usize> {
    let mut qubits: Vec<usize> = Vec::with_capacity(arity);
    for &r in raw.iter().take(arity) {
        let mut q = r % n;
        while qubits.contains(&q) {
            q = (q + 1) % n;
        }
        qubits.push(q);
    }
    qubits
}

/// Builds the circuit a raw draw describes on `n` qubits.
fn build_circuit(n: usize, ops: &[(Gate, Vec<usize>)]) -> Circuit {
    let mut qc = Circuit::new(n, n);
    for (gate, raw) in ops {
        qc.push_gate(*gate, &distinct_operands(raw, gate.num_qubits(), n));
    }
    qc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole invariant: the fused plan and the unfused per-gate
    /// kernel path produce identical amplitudes (1e-12) for random
    /// circuits up to 12 qubits, from multiple starting basis states.
    #[test]
    fn fused_plans_agree_with_unfused_kernels(
        n in 3usize..=12,
        ops in arb_ops(24),
    ) {
        let qc = build_circuit(n, &ops);
        let plan = CircuitPlan::compile(&qc);
        prop_assert!(plan.fused_unitaries() <= plan.source_gate_ops());
        for basis in [0usize, (1 << n) - 1, 1] {
            let mut fused = StateVector::basis(n, basis);
            plan.apply_unitary(&mut fused);
            let mut unfused = StateVector::basis(n, basis);
            for op in qc.ops() {
                if let qcir::circuit::Op::Gate { gate, qubits } = op {
                    unfused.apply_gate(*gate, qubits);
                }
            }
            for (i, (a, b)) in fused
                .amplitudes()
                .iter()
                .zip(unfused.amplitudes())
                .enumerate()
            {
                prop_assert!(
                    a.approx_eq(*b, 1e-12),
                    "{n} qubits, basis {basis}, amplitude {i} diverged: {a} vs {b}"
                );
            }
        }
    }

    /// Compilation is deterministic: compiling the same circuit twice
    /// yields structurally equal plans with equal fingerprints, and a
    /// warm-cache executor run is bit-identical to the cold-cache run.
    #[test]
    fn cached_plan_runs_are_bit_identical_to_cold_runs(
        n in 3usize..=8,
        ops in arb_ops(16),
        seed in 0u64..1000,
    ) {
        let mut qc = build_circuit(n, &ops);
        qc.measure_all();
        let a = CircuitPlan::compile(&qc);
        let b = CircuitPlan::compile(&qc);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());

        let cold = ExecutorConfig::new()
            .plan_cache(PlanCacheMode::Private)
            .build()
            .try_run(&qc, 256, seed)
            .unwrap();
        let exec = ExecutorConfig::new()
            .plan_cache(PlanCacheMode::Private)
            .build();
        let _ = exec.plan_for(&qc); // pre-warm the cache
        let warm = exec.try_run(&qc, 256, seed).unwrap();
        prop_assert_eq!(cold, warm);
    }
}
