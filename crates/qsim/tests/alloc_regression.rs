//! Regression test: gate application performs zero heap allocations after
//! the first call, via a counting global allocator.
//!
//! The specialized kernels never allocate (gate classification returns
//! matrix entries inline), and the general dense path reuses scratch
//! buffers held by the `StateVector` once they have grown to size. This
//! test pins both properties so a future refactor cannot quietly
//! reintroduce a per-gate allocation on the simulator hot path.
//!
//! Kept as its own integration binary (single test) so no concurrent test
//! thread can allocate while the counter is being read.

use qcir::gate::Gate;
use qcir::math::Matrix;
use qsim::noise::Pauli;
use qsim::state::StateVector;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator and counts allocation calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn apply_gate_allocates_nothing_after_first_call() {
    let n = 10;
    let gates: Vec<(Gate, Vec<usize>)> = vec![
        (Gate::Id, vec![0]),
        (Gate::H, vec![1]),
        (Gate::X, vec![2]),
        (Gate::Y, vec![3]),
        (Gate::Z, vec![4]),
        (Gate::S, vec![5]),
        (Gate::T, vec![6]),
        (Gate::SX, vec![7]),
        (Gate::RX(0.3), vec![8]),
        (Gate::RY(-1.2), vec![9]),
        (Gate::RZ(2.2), vec![0]),
        (Gate::P(0.7), vec![1]),
        (Gate::U(0.3, 1.1, -0.4), vec![2]),
        (Gate::CX, vec![3, 7]),
        (Gate::CY, vec![8, 2]),
        (Gate::CZ, vec![1, 6]),
        (Gate::CH, vec![5, 0]),
        (Gate::SWAP, vec![4, 9]),
        (Gate::CRX(0.5), vec![0, 3]),
        (Gate::CRY(-0.8), vec![6, 1]),
        (Gate::CRZ(1.4), vec![2, 8]),
        (Gate::CP(-0.6), vec![9, 5]),
        (Gate::CCX, vec![0, 4, 8]),
        (Gate::CSWAP, vec![7, 1, 5]),
    ];
    let matrix: Matrix = Gate::H.matrix().kron(&Gate::SX.matrix());
    let matrix_qubits = [2usize, 6];

    let mut sv = StateVector::zero(n);
    // Warm up: first calls may grow the dense-path scratch buffers.
    for (g, qs) in &gates {
        sv.apply_gate(*g, qs);
    }
    sv.apply_matrix(&matrix, &matrix_qubits);
    sv.apply_pauli(0, Pauli::X);
    sv.apply_pauli(1, Pauli::Y);
    sv.apply_pauli(2, Pauli::Z);

    // The harness's own runtime occasionally allocates on another thread
    // while we measure, so take the minimum over several attempts: the
    // gate loop is deterministic, so if ANY attempt observes zero
    // allocations the hot path itself is allocation-free.
    let mut min_allocs = usize::MAX;
    for _attempt in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..3 {
            for (g, qs) in &gates {
                sv.apply_gate(*g, qs);
            }
            sv.apply_matrix(&matrix, &matrix_qubits);
            sv.apply_pauli(0, Pauli::X);
            sv.apply_pauli(1, Pauli::Y);
            sv.apply_pauli(2, Pauli::Z);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_allocs = min_allocs.min(after - before);
    }

    assert_eq!(
        min_allocs, 0,
        "gate application allocated {min_allocs} time(s) on the warm path"
    );
    // Sanity: the state is still normalized after all that churn.
    assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
}
