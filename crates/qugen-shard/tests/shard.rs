//! End-to-end shard tests against the real `qugen-shard` binary.
//!
//! Every test spawns actual worker processes via
//! `CARGO_BIN_EXE_qugen-shard` (cargo builds and exports the path for
//! integration tests of the package that owns the binary) and holds the
//! merged report to the determinism contract: byte-identical to the
//! single-process reference, no matter the worker count, range size, or
//! which workers die along the way.

use proptest::prelude::*;
use qugen_shard::coordinator::{run_sharded, run_sharded_with_stats, ShardConfig};
use qugen_shard::workload::{Technique, WorkloadSpec};
use std::path::PathBuf;
use std::time::Duration;

fn config(workers: usize, range_size: usize) -> ShardConfig {
    ShardConfig {
        workers,
        range_size,
        timeout: Duration::from_secs(120),
        worker_binary: Some(PathBuf::from(env!("CARGO_BIN_EXE_qugen-shard"))),
        worker_env: Vec::new(),
    }
}

fn eval_spec(tasks: usize, samples: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec::Eval {
        tasks,
        samples,
        seed,
        technique: Technique::FineTuned,
    }
}

#[test]
fn sharded_eval_is_bit_identical_to_single_process() {
    let spec = eval_spec(8, 2, 13);
    let reference = spec.run_serial().unwrap();
    let reference_bytes = reference.to_json().encode();
    for (workers, range_size) in [(1, 1), (1, 3), (4, 1), (4, 2), (8, 1)] {
        let report = run_sharded(&spec, &config(workers, range_size)).unwrap();
        assert_eq!(
            report, reference,
            "workers={workers} range_size={range_size}"
        );
        assert_eq!(
            report.to_json().encode(),
            reference_bytes,
            "workers={workers} range_size={range_size}"
        );
    }
}

#[test]
fn sharded_qec_sweep_is_bit_identical_to_single_process() {
    let spec = WorkloadSpec::QecSweep {
        distance: 3,
        rounds: 1,
        trials: 80,
        seed: 21,
        points: 5,
    };
    let reference = spec.run_serial().unwrap();
    for workers in [1usize, 3] {
        let report = run_sharded(&spec, &config(workers, 1)).unwrap();
        assert_eq!(
            report.to_json().encode(),
            reference.to_json().encode(),
            "workers={workers}"
        );
    }
}

proptest! {
    // Process spawns make each case expensive; a handful of random grids
    // is plenty on top of the deterministic matrix above.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 1-shard and N-shard runs of a random task grid produce
    /// byte-identical reports for arbitrary range splits.
    #[test]
    fn random_grids_merge_bit_identically(
        tasks in 2usize..7,
        samples in 1usize..3,
        seed in 0u64..1_000,
        workers in 2usize..5,
        range_size in 1usize..4,
    ) {
        let spec = eval_spec(tasks, samples, seed);
        let one = run_sharded(&spec, &config(1, range_size)).unwrap();
        let many = run_sharded(&spec, &config(workers, range_size)).unwrap();
        prop_assert_eq!(
            one.to_json().encode(),
            many.to_json().encode(),
            "tasks={} samples={} seed={} workers={} range_size={}",
            tasks, samples, seed, workers, range_size
        );
    }
}

#[test]
fn killed_worker_range_is_reassigned_and_merges_identically() {
    let spec = eval_spec(6, 2, 29);
    let reference = spec.run_serial().unwrap();
    // Rank 1 dies on its very first range (FAIL_AFTER=0, so the kill
    // doesn't race the queue draining): that range must be reassigned
    // and the merged report must not change a byte.
    let mut cfg = config(2, 1);
    cfg.worker_env = vec![
        ("QUGEN_SHARD_FAIL_RANK".into(), "1".into()),
        ("QUGEN_SHARD_FAIL_AFTER".into(), "0".into()),
        ("QUGEN_SHARD_FAIL_MODE".into(), "exit".into()),
    ];
    let (report, stats) = run_sharded_with_stats(&spec, &cfg).unwrap();
    assert_eq!(report.to_json().encode(), reference.to_json().encode());
    // The death shows up in the run's stats: the reclaimed range was
    // requeued, every range completed, and the timings are coherent.
    assert!(stats.requeues >= 1, "{stats:?}");
    assert!(stats.ranges >= 6, "{stats:?}");
    assert!(stats.min_range_us <= stats.max_range_us, "{stats:?}");
    let completed: u64 = stats.per_worker.iter().map(|w| w.ranges).sum();
    assert_eq!(completed, stats.ranges, "{stats:?}");
}

#[test]
fn hung_worker_is_reclaimed_by_the_deadline() {
    let spec = eval_spec(4, 1, 31);
    let reference = spec.run_serial().unwrap();
    // Rank 1 wedges on its first range; only the per-range deadline can
    // free it. The survivor finishes the whole grid.
    let mut cfg = config(2, 1);
    cfg.timeout = Duration::from_millis(1500);
    cfg.worker_env = vec![
        ("QUGEN_SHARD_FAIL_RANK".into(), "1".into()),
        ("QUGEN_SHARD_FAIL_MODE".into(), "hang".into()),
    ];
    let report = run_sharded(&spec, &cfg).unwrap();
    assert_eq!(report.to_json().encode(), reference.to_json().encode());
}

#[test]
fn losing_every_worker_is_a_typed_error() {
    let spec = eval_spec(4, 1, 37);
    let mut cfg = config(2, 1);
    cfg.worker_env = vec![("QUGEN_SHARD_FAIL_RANK".into(), "all".into())];
    let err = run_sharded(&spec, &cfg).unwrap_err();
    // Depending on interleaving the run dies on the attempt budget of
    // one range or on running out of workers; both are typed.
    assert!(
        matches!(err.code(), "range_failed" | "workers_exhausted"),
        "unexpected error: {err:?}"
    );
}

#[test]
fn unspawnable_worker_binary_is_a_typed_error() {
    let spec = eval_spec(2, 1, 41);
    let mut cfg = config(1, 1);
    cfg.worker_binary = Some(PathBuf::from("/nonexistent/qugen-shard"));
    let err = run_sharded(&spec, &cfg).unwrap_err();
    assert_eq!(err.code(), "spawn");
}

#[test]
fn invalid_workload_fails_before_spawning() {
    let spec = eval_spec(0, 1, 1);
    // Even with an unspawnable binary: validation comes first.
    let mut cfg = config(1, 1);
    cfg.worker_binary = Some(PathBuf::from("/nonexistent/qugen-shard"));
    let err = run_sharded(&spec, &cfg).unwrap_err();
    assert_eq!(err.code(), "bad_workload");
}
