//! Criterion bench: the 1→N process scaling curve for sharded evaluation.
//!
//! Emits `shard_eval/workers_{1,2,4}` (the flagship paper-suite workload)
//! and `shard_qec_d7/workers_{1,4}` (the distance-7 memory sweep) so CI's
//! `BENCH_shard.json` tracks the speedup curve over time. The curve is
//! **tracked, not asserted**: the acceptance bar (≥ 2.5x at 4 workers vs
//! 1 on the eval workload) only means anything on a multi-core runner,
//! and a single-CPU host would fail it for reasons that have nothing to
//! do with the code. What *is* asserted — here, once, before timing —
//! is the determinism contract: the 4-worker merged report must be
//! byte-identical to the single-process reference.

use criterion::{criterion_group, criterion_main, Criterion};
use qugen_shard::coordinator::{run_sharded, ShardConfig};
use qugen_shard::workload::{Technique, WorkloadSpec};
use std::path::PathBuf;
use std::time::Duration;

fn config(workers: usize) -> ShardConfig {
    ShardConfig {
        workers,
        range_size: 1,
        timeout: Duration::from_secs(600),
        worker_binary: Some(PathBuf::from(env!("CARGO_BIN_EXE_qugen-shard"))),
        worker_env: Vec::new(),
    }
}

fn bench_shard_eval(c: &mut Criterion) {
    // The flagship workload: the full 34-task paper suite. 64 samples per
    // task keeps a 1-worker pass in the hundreds of milliseconds, so the
    // process fan-out (not spawn overhead) dominates the measurement.
    let spec = WorkloadSpec::Eval {
        tasks: qeval::suite::test_suite().len(),
        samples: 64,
        seed: 7,
        technique: Technique::Scot,
    };
    let reference = spec.run_serial().unwrap().to_json().encode();
    let sharded = run_sharded(&spec, &config(4)).unwrap().to_json().encode();
    assert_eq!(
        sharded, reference,
        "4-worker merge must be byte-identical to the single-process run"
    );

    let mut group = c.benchmark_group("shard_eval");
    for workers in [1usize, 2, 4] {
        group.bench_function(&format!("workers_{workers}"), |b| {
            let cfg = config(workers);
            b.iter(|| std::hint::black_box(run_sharded(&spec, &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_shard_qec(c: &mut Criterion) {
    let spec = WorkloadSpec::QecSweep {
        distance: 7,
        rounds: 2,
        trials: 100,
        seed: 11,
        points: 4,
    };
    let mut group = c.benchmark_group("shard_qec_d7");
    for workers in [1usize, 4] {
        group.bench_function(&format!("workers_{workers}"), |b| {
            let cfg = config(workers);
            b.iter(|| std::hint::black_box(run_sharded(&spec, &cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_eval, bench_shard_qec);
criterion_main!(benches);
