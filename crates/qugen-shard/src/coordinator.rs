//! The shard coordinator: spawns workers, deals ranges, merges results.
//!
//! Topology: the coordinator self-execs N copies of its own binary in
//! `--worker` mode and speaks the [`crate::proto`] line protocol over
//! each worker's stdio pipes. A shared deque of range assignments feeds
//! one supervisor thread per worker; results land in per-range slots and
//! are folded **in range order** once everything is in, so the merged
//! report never depends on which worker finished first.
//!
//! Failure semantics: a worker that dies (EOF/broken pipe) or misses the
//! per-range deadline is killed and its in-flight range is requeued for
//! one more attempt ([`MAX_ATTEMPTS`] total); a second failure of the
//! same range is a typed [`ShardError::RangeFailed`]. The pool shrinks
//! rather than respawns — if every worker dies with work outstanding the
//! run fails with [`ShardError::WorkersExhausted`]. Worker-reported
//! workload failures are deterministic and fail the run immediately.

use crate::error::{ShardError, MAX_ATTEMPTS};
use crate::proto::{FromWorker, ToWorker};
use crate::workload::{ShardReport, WorkloadSpec};
use qugen_telemetry::metrics::{self as tmetrics, Counter, Histogram};
use qugen_telemetry::trace;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{mpsc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Registry handles for the shard layer, interned once.
struct ShardMetrics {
    ranges: &'static Counter,
    requeues: &'static Counter,
    range_us: &'static Histogram,
}

fn shard_metrics() -> &'static ShardMetrics {
    static METRICS: OnceLock<ShardMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ShardMetrics {
        ranges: tmetrics::counter("shard.ranges"),
        requeues: tmetrics::counter("shard.requeues"),
        range_us: tmetrics::histogram("shard.range_us"),
    })
}

/// One worker's share of a sharded run (supervisor-side timing, so a
/// range's duration includes the pipe round trip, not just compute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker rank (index into the spawned pool).
    pub rank: usize,
    /// Ranges this worker completed.
    pub ranges: u64,
    /// Total µs this worker spent on completed ranges.
    pub total_us: u64,
}

/// Timing and fault telemetry for one sharded run — the coordinator's
/// view of load balance: `max_range_us` names the straggler cost and
/// `requeues` the fault-recovery churn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Ranges completed (counting duplicates from requeued attempts).
    pub ranges: u64,
    /// Assignments put back after a worker died or missed its deadline.
    pub requeues: u64,
    /// Fastest completed range, µs (0 when nothing completed).
    pub min_range_us: u64,
    /// Slowest completed range, µs — the straggler.
    pub max_range_us: u64,
    /// Per-rank completion counts and cumulative time.
    pub per_worker: Vec<WorkerStats>,
}

/// Run-local accumulator behind one mutex; supervisors touch it once per
/// range, so contention is nil next to the process pipes.
struct StatsAccum {
    requeues: u64,
    min_range_us: u64,
    max_range_us: u64,
    per_worker: Vec<WorkerStats>,
}

/// How a sharded run is shaped.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker processes to spawn (clamped to ≥ 1).
    pub workers: usize,
    /// Units per range handed to a worker at a time (clamped to ≥ 1).
    /// Small ranges load-balance better; 1 is the default.
    pub range_size: usize,
    /// Per-range response deadline; a worker that blows it is killed and
    /// its range reassigned.
    pub timeout: Duration,
    /// Worker binary to exec; `None` means the current executable
    /// (tests and benches point this at `CARGO_BIN_EXE_qugen-shard`).
    pub worker_binary: Option<PathBuf>,
    /// Extra environment for workers (the fault-injection test hooks
    /// ride in here so nothing leaks through the coordinator's env).
    pub worker_env: Vec<(String, String)>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            workers: 4,
            range_size: 1,
            timeout: Duration::from_secs(300),
            worker_binary: None,
            worker_env: Vec::new(),
        }
    }
}

/// One entry in the work deque.
#[derive(Debug, Clone, Copy)]
struct Assignment {
    range_id: usize,
    attempt: u32,
}

/// Coordinator state shared by the supervisor threads.
struct Shared {
    ranges: Vec<(usize, usize)>,
    queue: Mutex<VecDeque<Assignment>>,
    /// Wakes idle supervisors when work is requeued or the run ends.
    wake: Condvar,
    slots: Vec<Mutex<Option<Vec<Vec<u64>>>>>,
    remaining: AtomicUsize,
    error: Mutex<Option<ShardError>>,
    stats: Mutex<StatsAccum>,
}

impl Shared {
    fn failed(&self) -> bool {
        self.error.lock().expect("error slot poisoned").is_some()
    }

    fn fail(&self, e: ShardError) {
        let mut slot = self.error.lock().expect("error slot poisoned");
        // First failure wins; later ones are usually its echoes.
        slot.get_or_insert(e);
        drop(slot);
        self.wake.notify_all();
    }

    fn done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Blocks until there is an assignment, or returns `None` when the
    /// run is over (all results in, or failed).
    fn next_assignment(&self) -> Option<Assignment> {
        let mut queue = self.queue.lock().expect("queue poisoned");
        loop {
            if self.done() || self.failed() {
                return None;
            }
            if let Some(a) = queue.pop_front() {
                return Some(a);
            }
            // Timed wait: also catches the no-notify case where the last
            // live peer dies without requeueing anything.
            let (guard, _) = self
                .wake
                .wait_timeout(queue, Duration::from_millis(50))
                .expect("queue poisoned");
            queue = guard;
        }
    }

    /// Records a completed range (idempotent against stale duplicates).
    fn complete(&self, range_id: usize, rows: Vec<Vec<u64>>) {
        let mut slot = self.slots[range_id].lock().expect("slot poisoned");
        if slot.is_none() {
            *slot = Some(rows);
            self.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        drop(slot);
        self.wake.notify_all();
    }

    /// Puts a failed assignment back for one more attempt, or poisons
    /// the run when the attempt budget is spent.
    fn requeue(&self, a: Assignment) {
        if self.slots[a.range_id]
            .lock()
            .expect("slot poisoned")
            .is_some()
        {
            return; // A duplicate already completed it.
        }
        if a.attempt + 1 >= MAX_ATTEMPTS {
            let (start, end) = self.ranges[a.range_id];
            self.fail(ShardError::RangeFailed {
                range_id: a.range_id,
                start,
                end,
                attempts: MAX_ATTEMPTS,
            });
            return;
        }
        self.queue
            .lock()
            .expect("queue poisoned")
            .push_back(Assignment {
                range_id: a.range_id,
                attempt: a.attempt + 1,
            });
        shard_metrics().requeues.inc();
        self.stats.lock().expect("stats poisoned").requeues += 1;
        trace::event(
            "shard",
            "requeue",
            &[
                ("range_id", a.range_id as i128),
                ("attempt", (a.attempt + 1) as i128),
            ],
        );
        self.wake.notify_all();
    }

    /// Records one completed range's supervisor-side duration for `rank`.
    fn record_range(&self, rank: usize, dur_us: u64) {
        let m = shard_metrics();
        m.ranges.inc();
        m.range_us.record(dur_us);
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.min_range_us = stats.min_range_us.min(dur_us);
        stats.max_range_us = stats.max_range_us.max(dur_us);
        let w = &mut stats.per_worker[rank];
        w.ranges += 1;
        w.total_us += dur_us;
    }
}

/// A spawned worker plus the plumbing to talk to it.
struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    lines: Receiver<std::io::Result<String>>,
}

impl WorkerHandle {
    fn spawn(rank: usize, spec: &WorkloadSpec, config: &ShardConfig) -> Result<Self, ShardError> {
        let binary = match &config.worker_binary {
            Some(path) => path.clone(),
            None => std::env::current_exe()
                .map_err(|e| ShardError::Spawn(format!("cannot locate own binary: {e}")))?,
        };
        let mut command = Command::new(binary);
        command
            .arg("--worker")
            .arg("--rank")
            .arg(rank.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in &config.worker_env {
            command.env(key, value);
        }
        let mut child = command
            .spawn()
            .map_err(|e| ShardError::Spawn(format!("worker {rank}: {e}")))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        // A dedicated reader thread turns the blocking pipe into a
        // channel so the supervisor can wait with a deadline; it exits on
        // EOF (dropping the sender, which the supervisor sees as death).
        let (sender, lines) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                if sender.send(line).is_err() {
                    break;
                }
            }
        });
        // The init/ready handshake happens under the same deadline as
        // ranges: a worker that can't start is dead on arrival.
        let mut handle = WorkerHandle {
            child,
            stdin,
            lines,
        };
        handle
            .send(&ToWorker::Init { spec: spec.clone() })
            .map_err(|e| ShardError::Spawn(format!("worker {rank}: init: {e}")))?;
        match handle.recv(config.timeout) {
            Ok(FromWorker::Ready { rank: reported }) if reported == rank => Ok(handle),
            Ok(other) => {
                handle.kill();
                Err(ShardError::Spawn(format!(
                    "worker {rank}: bad handshake reply {other:?}"
                )))
            }
            Err(e) => {
                handle.kill();
                Err(ShardError::Spawn(format!("worker {rank}: handshake: {e}")))
            }
        }
    }

    fn send(&mut self, message: &ToWorker) -> std::io::Result<()> {
        let mut line = message.encode();
        line.push('\n');
        self.stdin.write_all(line.as_bytes())?;
        self.stdin.flush()
    }

    /// Waits for one worker line. `Err` means death or deadline.
    fn recv(&mut self, timeout: Duration) -> Result<FromWorker, String> {
        match self.lines.recv_timeout(timeout) {
            Ok(Ok(line)) => FromWorker::parse(&line).map_err(|e| e.to_string()),
            Ok(Err(e)) => Err(format!("pipe error: {e}")),
            Err(RecvTimeoutError::Timeout) => Err("deadline exceeded".into()),
            Err(RecvTimeoutError::Disconnected) => Err("worker exited".into()),
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Drives one worker until the run completes, fails, or the worker dies.
fn supervise(rank: usize, worker: &mut WorkerHandle, shared: &Shared, timeout: Duration) {
    while let Some(assignment) = shared.next_assignment() {
        let (start, end) = shared.ranges[assignment.range_id];
        // The span covers send → compute → recv; failure arms `return`,
        // so it still emits (without `ok`) when the worker dies mid-range.
        let span = trace::span("shard", "range")
            .int("rank", rank as i128)
            .int("range_id", assignment.range_id as i128)
            .int("start", start as i128)
            .int("end", end as i128)
            .int("attempt", assignment.attempt as i128);
        let started = Instant::now();
        if worker
            .send(&ToWorker::Range {
                id: assignment.range_id,
                start,
                end,
            })
            .is_err()
        {
            // Broken pipe: the worker is gone before it saw the range.
            worker.kill();
            shared.requeue(assignment);
            return;
        }
        match worker.recv(timeout) {
            Ok(FromWorker::Rows { id, rows }) if id == assignment.range_id => {
                let dur_us = started.elapsed().as_micros() as u64;
                shared.complete(id, rows);
                shared.record_range(rank, dur_us);
                span.int("ok", 1).finish();
            }
            Ok(FromWorker::Rows { id, .. }) => {
                worker.kill();
                shared.fail(ShardError::Protocol(format!(
                    "worker {rank} answered range {} with rows for {id}",
                    assignment.range_id
                )));
                return;
            }
            Ok(FromWorker::Ready { .. }) => {
                worker.kill();
                shared.fail(ShardError::Protocol(format!(
                    "worker {rank} sent a second handshake"
                )));
                return;
            }
            Ok(FromWorker::Failed { message }) => {
                // Deterministic failure: reassignment would just repeat it.
                worker.kill();
                shared.fail(ShardError::Workload(format!("worker {rank}: {message}")));
                return;
            }
            Err(_) => {
                // Death or deadline: reclaim the range, drop the worker.
                worker.kill();
                shared.requeue(assignment);
                return;
            }
        }
    }
    // Run is over (completed or failed elsewhere): ask for a clean exit.
    let _ = worker.send(&ToWorker::Exit);
    let _ = worker.child.wait();
}

/// Runs `spec` sharded over worker processes and merges the results.
///
/// The merged [`ShardReport`] is bit-identical to
/// [`WorkloadSpec::run_serial`] for every worker count, range size and
/// completion order — sharding here is a throughput lever, never an
/// accuracy trade.
pub fn run_sharded(spec: &WorkloadSpec, config: &ShardConfig) -> Result<ShardReport, ShardError> {
    run_sharded_with_stats(spec, config).map(|(report, _)| report)
}

/// [`run_sharded`] plus the run's [`ShardStats`]: per-worker range
/// counts and cumulative time, requeue churn, and the straggler
/// (min/max completed-range duration). The report half is identical to
/// what [`run_sharded`] returns.
///
/// # Errors
///
/// Exactly [`run_sharded`]'s — a failed run yields no stats.
pub fn run_sharded_with_stats(
    spec: &WorkloadSpec,
    config: &ShardConfig,
) -> Result<(ShardReport, ShardStats), ShardError> {
    spec.validate()?;
    let ranges = qeval::report::partition_ranges(spec.units(), config.range_size);
    let workers = config.workers.max(1).min(ranges.len().max(1));

    let shared = Shared {
        queue: Mutex::new(
            ranges
                .iter()
                .enumerate()
                .map(|(range_id, _)| Assignment {
                    range_id,
                    attempt: 0,
                })
                .collect(),
        ),
        wake: Condvar::new(),
        slots: ranges.iter().map(|_| Mutex::new(None)).collect(),
        remaining: AtomicUsize::new(ranges.len()),
        error: Mutex::new(None),
        stats: Mutex::new(StatsAccum {
            requeues: 0,
            min_range_us: u64::MAX,
            max_range_us: 0,
            per_worker: (0..workers)
                .map(|rank| WorkerStats {
                    rank,
                    ranges: 0,
                    total_us: 0,
                })
                .collect(),
        }),
        ranges,
    };

    // Spawn first, supervise after: a spawn failure aborts the run before
    // any range is handed out.
    let mut handles = Vec::with_capacity(workers);
    for rank in 0..workers {
        match WorkerHandle::spawn(rank, spec, config) {
            Ok(handle) => handles.push(handle),
            Err(e) => {
                for handle in &mut handles {
                    handle.kill();
                }
                return Err(e);
            }
        }
    }

    std::thread::scope(|scope| {
        for (rank, worker) in handles.iter_mut().enumerate() {
            let shared = &shared;
            scope.spawn(move || supervise(rank, worker, shared, config.timeout));
        }
    });

    if let Some(e) = shared.error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let unfinished = shared.remaining.load(Ordering::Acquire);
    if unfinished > 0 {
        return Err(ShardError::WorkersExhausted { unfinished });
    }
    let rows = shared
        .slots
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("remaining hit zero, so every slot is filled")
        })
        .collect();
    let accum = shared.stats.into_inner().expect("stats poisoned");
    let stats = ShardStats {
        ranges: accum.per_worker.iter().map(|w| w.ranges).sum(),
        requeues: accum.requeues,
        min_range_us: if accum.min_range_us == u64::MAX {
            0
        } else {
            accum.min_range_us
        },
        max_range_us: accum.max_range_us,
        per_worker: accum.per_worker,
    };
    spec.merge(rows).map(|report| (report, stats))
}
