//! The worker side of the shard protocol: a stdin→stdout range server.
//!
//! A worker is the same `qugen-shard` binary re-exec'd with `--worker
//! --rank I`. It reads one [`crate::proto::ToWorker`] line at a time,
//! grades ranges single-threaded (process fan-out is the parallelism
//! unit), and answers each range with its rows. Workers are stateless
//! between ranges — all placement information (global unit indices) is in
//! the request, which is what makes reassignment after a death safe.
//!
//! # Fault injection (test hooks)
//!
//! The robustness tests need workers that die or hang on cue. Three env
//! variables (set per-worker by the coordinator's `worker_env`, so they
//! never leak across runs) arrange that:
//!
//! * `QUGEN_SHARD_FAIL_RANK` — rank to sabotage, or `all`.
//! * `QUGEN_SHARD_FAIL_AFTER` — ranges to complete first (default 0).
//! * `QUGEN_SHARD_FAIL_MODE` — `exit` (default) or `hang`.

use crate::proto::{FromWorker, ToWorker};
use crate::workload::WorkloadCtx;
use std::io::{BufRead, Write};

/// What the fault-injection env asked this worker to do.
struct FaultPlan {
    armed: bool,
    after: usize,
    hang: bool,
}

impl FaultPlan {
    fn from_env(rank: usize) -> FaultPlan {
        let armed = match std::env::var("QUGEN_SHARD_FAIL_RANK") {
            Ok(v) => v == "all" || v.parse() == Ok(rank),
            Err(_) => false,
        };
        let after = std::env::var("QUGEN_SHARD_FAIL_AFTER")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let hang = std::env::var("QUGEN_SHARD_FAIL_MODE").as_deref() == Ok("hang");
        FaultPlan { armed, after, hang }
    }

    /// Fires the planned fault if `completed` ranges have been served.
    fn maybe_fire(&self, completed: usize) {
        if !self.armed || completed < self.after {
            return;
        }
        if self.hang {
            // Simulate a wedged worker: stop answering but stay alive so
            // only the coordinator's deadline can reclaim the range.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        std::process::exit(3);
    }
}

/// Serves ranges from stdin until an `exit` op or EOF (coordinator gone).
///
/// `Err` is a protocol-level failure worth a nonzero exit status; workload
/// failures are reported to the coordinator in-band instead.
pub fn run_worker(rank: usize) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut lines = stdin.lock().lines();
    let mut out = stdout.lock();
    let fault = FaultPlan::from_env(rank);

    let mut reply = |message: &FromWorker| -> Result<(), String> {
        let mut line = message.encode();
        line.push('\n');
        out.write_all(line.as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| format!("stdout gone: {e}"))
    };

    // First line must be init; it tells us what to build.
    let first = match lines.next() {
        Some(line) => line.map_err(|e| format!("stdin error: {e}"))?,
        None => return Ok(()), // Spawned and immediately abandoned.
    };
    let spec = match ToWorker::parse(&first) {
        Ok(ToWorker::Init { spec }) => spec,
        Ok(other) => return Err(format!("expected init, got {other:?}")),
        Err(e) => return Err(format!("bad init line: {e}")),
    };
    let ctx: WorkloadCtx = spec.build_ctx();
    reply(&FromWorker::Ready { rank })?;

    let mut completed = 0usize;
    for line in lines {
        let line = line.map_err(|e| format!("stdin error: {e}"))?;
        match ToWorker::parse(&line) {
            Ok(ToWorker::Range { id, start, end }) => {
                fault.maybe_fire(completed);
                match spec.run_range(&ctx, start, end) {
                    Ok(rows) => reply(&FromWorker::Rows { id, rows })?,
                    Err(message) => reply(&FromWorker::Failed { message })?,
                }
                completed += 1;
            }
            Ok(ToWorker::Exit) => return Ok(()),
            Ok(ToWorker::Init { .. }) => return Err("double init".into()),
            Err(e) => return Err(format!("bad coordinator line: {e}")),
        }
    }
    Ok(()) // EOF: coordinator dropped the pipe.
}
