//! The shard subsystem's typed error vocabulary.
//!
//! Mirrors `qugen_serve::error::ServeError`'s shape one service over:
//! every failure the coordinator can surface is a [`ShardError`] with a
//! stable machine-readable [`ShardError::code`]. Callers (the CLI, the
//! bench, CI smoke greps) key on the code; messages can grow detail
//! without breaking anyone.

use std::fmt;

/// How many times a range may be handed out before the run fails: the
/// original assignment plus exactly one reassignment after a worker death
/// or timeout. A range that kills two workers is treated as poison, not
/// bad luck.
pub const MAX_ATTEMPTS: u32 = 2;

/// Why a sharded run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A worker process could not be spawned or its pipes set up.
    Spawn(String),
    /// A worker sent a line the coordinator could not understand (bad
    /// JSON, unknown op, mismatched range id, …).
    Protocol(String),
    /// The workload specification itself was malformed (zero tasks,
    /// unknown technique, …) — nothing was run.
    BadWorkload(String),
    /// A range was reassigned after a worker death/timeout and the
    /// replacement attempt failed too ([`MAX_ATTEMPTS`] exhausted).
    RangeFailed {
        /// Index of the poisoned range.
        range_id: usize,
        /// Unit range `[start, end)` it covered.
        start: usize,
        /// End of the unit range.
        end: usize,
        /// Attempts consumed (always [`MAX_ATTEMPTS`]).
        attempts: u32,
    },
    /// Every worker died while ranges were still unfinished; there is
    /// nobody left to reassign them to.
    WorkersExhausted {
        /// Ranges still without a result.
        unfinished: usize,
    },
    /// A worker reported a deterministic workload failure (e.g. the
    /// simulator refused a circuit). Reassignment would fail identically,
    /// so the run stops immediately.
    Workload(String),
}

impl ShardError {
    /// Stable machine-readable identifier for the failure class.
    pub fn code(&self) -> &'static str {
        match self {
            ShardError::Spawn(_) => "spawn",
            ShardError::Protocol(_) => "protocol",
            ShardError::BadWorkload(_) => "bad_workload",
            ShardError::RangeFailed { .. } => "range_failed",
            ShardError::WorkersExhausted { .. } => "workers_exhausted",
            ShardError::Workload(_) => "workload",
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Spawn(msg) => write!(f, "cannot spawn worker: {msg}"),
            ShardError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ShardError::BadWorkload(msg) => write!(f, "bad workload: {msg}"),
            ShardError::RangeFailed {
                range_id,
                start,
                end,
                attempts,
            } => write!(
                f,
                "range {range_id} (units {start}..{end}) failed {attempts} attempts"
            ),
            ShardError::WorkersExhausted { unfinished } => {
                write!(f, "all workers died with {unfinished} range(s) unfinished")
            }
            ShardError::Workload(msg) => write!(f, "workload failed: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            ShardError::Spawn("x".into()),
            ShardError::Protocol("x".into()),
            ShardError::BadWorkload("x".into()),
            ShardError::RangeFailed {
                range_id: 3,
                start: 6,
                end: 8,
                attempts: MAX_ATTEMPTS,
            },
            ShardError::WorkersExhausted { unfinished: 2 },
            ShardError::Workload("x".into()),
        ];
        let codes: Vec<_> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            [
                "spawn",
                "protocol",
                "bad_workload",
                "range_failed",
                "workers_exhausted",
                "workload"
            ]
        );
    }
}
