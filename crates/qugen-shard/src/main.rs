//! The `qugen-shard` binary: coordinator by default, worker under
//! `--worker`.
//!
//! ```text
//! qugen-shard --workers 4 --samples 8 --seed 7           # eval suite
//! qugen-shard --workload qec --distance 7 --points 6     # QEC sweep
//! qugen-shard --workers 4 --verify                       # + bit-identity check
//! qugen-shard --worker --rank 2                          # (internal) worker mode
//! ```

use qugen_shard::coordinator::{run_sharded_with_stats, ShardConfig};
use qugen_shard::worker::run_worker;
use qugen_shard::workload::{Technique, WorkloadSpec};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: qugen-shard [--workload eval|qec] [--workers N] [--range-size K] \
                     [--timeout-ms T] [--tasks N] [--samples N] [--seed S] [--technique T] \
                     [--distance D] [--rounds R] [--trials T] [--points P] \
                     [--serial] [--verify] [--json]\n\
                     \x20      qugen-shard --worker --rank I";

fn main() -> ExitCode {
    let mut worker_mode = false;
    let mut rank = 0usize;
    let mut workload = "eval".to_string();
    let mut config = ShardConfig::default();
    let mut tasks: Option<usize> = None;
    let mut samples = 8usize;
    let mut seed = 7u64;
    let mut technique = Technique::Scot;
    let mut distance = 7usize;
    let mut rounds = 2usize;
    let mut trials = 400u64;
    let mut points = 6usize;
    let mut serial = false;
    let mut verify = false;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        macro_rules! value_flag {
            ($target:expr) => {
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => $target = v,
                    None => return usage_error(&format!("{arg} needs a value")),
                }
            };
        }
        match arg.as_str() {
            "--worker" => worker_mode = true,
            "--rank" => value_flag!(rank),
            "--workload" => match args.next() {
                Some(v) if v == "eval" || v == "qec" => workload = v,
                _ => return usage_error("--workload must be `eval` or `qec`"),
            },
            "--workers" => value_flag!(config.workers),
            "--range-size" => value_flag!(config.range_size),
            "--timeout-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => config.timeout = Duration::from_millis(ms),
                None => return usage_error("--timeout-ms needs a number"),
            },
            "--tasks" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => tasks = Some(n),
                None => return usage_error("--tasks needs a number"),
            },
            "--samples" => value_flag!(samples),
            "--seed" => value_flag!(seed),
            "--technique" => match args.next().as_deref().and_then(Technique::parse) {
                Some(t) => technique = t,
                None => {
                    return usage_error(
                        "--technique must be base|fine-tuned|rag|cot|scot (or a full label)",
                    )
                }
            },
            "--distance" => value_flag!(distance),
            "--rounds" => value_flag!(rounds),
            "--trials" => value_flag!(trials),
            "--points" => value_flag!(points),
            "--serial" => serial = true,
            "--verify" => verify = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    if worker_mode {
        return match run_worker(rank) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("qugen-shard worker {rank}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let spec = match workload.as_str() {
        "eval" => WorkloadSpec::Eval {
            tasks: tasks.unwrap_or_else(|| qeval::suite::test_suite().len()),
            samples,
            seed,
            technique,
        },
        _ => WorkloadSpec::QecSweep {
            distance,
            rounds,
            trials,
            seed,
            points,
        },
    };

    let started = Instant::now();
    let outcome = if serial {
        spec.run_serial().map(|report| (report, None))
    } else {
        run_sharded_with_stats(&spec, &config).map(|(report, stats)| (report, Some(stats)))
    };
    let (report, stats) = match outcome {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("qugen-shard: [{}] {e}", e.code());
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    print!("{}", report.render());
    // The straggler fields (range_min/max) bound per-range skew: a max
    // far above min names the load-balance cost a smaller --range-size
    // would claw back.
    let sharded_fields = match &stats {
        Some(s) => format!(
            " ranges={} requeues={} range_min_ms={:.1} range_max_ms={:.1}",
            s.ranges,
            s.requeues,
            s.min_range_us as f64 / 1e3,
            s.max_range_us as f64 / 1e3,
        ),
        None => String::new(),
    };
    eprintln!(
        "shard: workload={workload} units={} workers={} range_size={} elapsed={:.1}ms mode={}{sharded_fields}",
        spec.units(),
        config.workers,
        config.range_size,
        elapsed.as_secs_f64() * 1e3,
        if serial { "serial" } else { "sharded" },
    );
    if json {
        println!("{}", report.to_json().encode());
    }

    if verify {
        // The determinism contract, checked end to end: the sharded (or
        // serial) report must encode to the same bytes as the in-process
        // single-process reference.
        match spec.run_serial() {
            Ok(reference) => {
                let identical = report.to_json().encode() == reference.to_json().encode();
                println!("bit-identical to single-process: {identical}");
                if !identical {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("qugen-shard: verify reference failed: [{}] {e}", e.code());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("qugen-shard: {message}\n{USAGE}");
    ExitCode::FAILURE
}
