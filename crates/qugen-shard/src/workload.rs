//! The two flagship workloads a shard run can execute, and their merge
//! logic.
//!
//! A workload is a grid of independent **units** (an eval task, a QEC
//! sweep point) whose per-unit seeds depend only on the spec and the unit
//! index — never on which process grades them. Workers turn a unit range
//! into integer rows; the coordinator concatenates rows in unit order and
//! [`WorkloadSpec::merge`]s them through exactly the fold the
//! single-process path uses, so the merged report is bit-identical to
//! [`WorkloadSpec::run_serial`] for any worker count, range size, or
//! completion order.
//!
//! Wire rows are integers only. The eval workload ships raw tallies; the
//! QEC workload ships logical error rates as [`f64::to_bits`] so the
//! float crosses the pipe exactly.

use crate::error::ShardError;
use qec::memory::{circuit_level_experiment_threaded, MemoryResult};
use qeval::report::{self, EvalOutcome, TaskEval};
use qeval::suite::{test_suite, Task};
use qlm::model::{CodeLlm, GenConfig};
use qsim::noise::NoiseModel;
use qugen_wire::codec::{obj, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Low end of the QEC sweep's physical error ladder.
pub const QEC_P_LO: f64 = 1e-3;
/// High end of the QEC sweep's physical error ladder.
pub const QEC_P_HI: f64 = 8e-3;

/// Generation technique for the eval workload (wire names are the
/// [`GenConfig`] labels from the paper's Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Baseline model.
    Base,
    /// Fine-tuned model.
    FineTuned,
    /// Fine-tuned + retrieval.
    Rag,
    /// Fine-tuned + chain-of-thought.
    Cot,
    /// Fine-tuned + structured chain-of-thought (the paper's best).
    Scot,
}

impl Technique {
    /// The [`GenConfig`] this technique names.
    pub fn gen_config(&self) -> GenConfig {
        match self {
            Technique::Base => GenConfig::base(),
            Technique::FineTuned => GenConfig::fine_tuned(),
            Technique::Rag => GenConfig::with_rag(),
            Technique::Cot => GenConfig::with_cot(),
            Technique::Scot => GenConfig::with_scot(),
        }
    }

    /// Stable wire/CLI name (the `GenConfig` label).
    pub fn as_str(&self) -> &'static str {
        self.gen_config().label
    }

    /// Parses a wire/CLI name; short forms (`rag`, `cot`, `scot`) are
    /// accepted for the CLI's sake.
    pub fn parse(s: &str) -> Option<Technique> {
        match s {
            "base" => Some(Technique::Base),
            "fine-tuned" => Some(Technique::FineTuned),
            "fine-tuned+rag" | "rag" => Some(Technique::Rag),
            "fine-tuned+cot" | "cot" => Some(Technique::Cot),
            "fine-tuned+scot" | "scot" => Some(Technique::Scot),
            _ => None,
        }
    }
}

/// What a shard run computes.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The paper eval suite: grade `samples` generations for the first
    /// `tasks` suite tasks under one technique. Unit = task index.
    Eval {
        /// How many suite tasks (a prefix of [`test_suite`]).
        tasks: usize,
        /// Samples per task.
        samples: usize,
        /// Base seed (per-sample seeds derive from it + global indices).
        seed: u64,
        /// Generation technique.
        technique: Technique,
    },
    /// The distance-`d` QEC memory sweep: one circuit-level experiment
    /// per point on a geometric physical-error ladder. Unit = point.
    QecSweep {
        /// Code distance.
        distance: usize,
        /// Syndrome-extraction rounds.
        rounds: usize,
        /// Monte-Carlo trials per point.
        trials: u64,
        /// Base seed (point `i` runs with `derive_seed(seed, i)`).
        seed: u64,
        /// Ladder points between [`QEC_P_LO`] and [`QEC_P_HI`].
        points: usize,
    },
}

/// Per-worker state built once at init (the model and task list are
/// deterministic functions of the spec, so every process builds the same
/// ones).
pub struct WorkloadCtx {
    llm: Option<CodeLlm>,
    tasks: Vec<Task>,
}

/// The merged result of a shard run.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardReport {
    /// Eval workload outcome (the Figure 3 row).
    Eval(EvalOutcome),
    /// QEC sweep outcome, one result per ladder point in order.
    Qec(Vec<MemoryResult>),
}

impl WorkloadSpec {
    /// Number of independent units in the grid.
    pub fn units(&self) -> usize {
        match self {
            WorkloadSpec::Eval { tasks, .. } => *tasks,
            WorkloadSpec::QecSweep { points, .. } => *points,
        }
    }

    /// Rejects specs that cannot run, before any process is spawned.
    pub fn validate(&self) -> Result<(), ShardError> {
        let bad = |msg: String| Err(ShardError::BadWorkload(msg));
        match self {
            WorkloadSpec::Eval { tasks, samples, .. } => {
                let suite_len = test_suite().len();
                if *tasks == 0 || *tasks > suite_len {
                    return bad(format!("tasks must be 1..={suite_len}, got {tasks}"));
                }
                if *samples == 0 {
                    return bad("samples must be >= 1".into());
                }
            }
            WorkloadSpec::QecSweep {
                distance,
                rounds,
                trials,
                points,
                ..
            } => {
                if *distance < 3 || distance % 2 == 0 {
                    return bad(format!("distance must be odd and >= 3, got {distance}"));
                }
                if *rounds == 0 || *trials == 0 || *points == 0 {
                    return bad("rounds, trials and points must all be >= 1".into());
                }
            }
        }
        Ok(())
    }

    /// Canonical wire form (integers only; the technique travels by
    /// label).
    pub fn to_json(&self) -> Json {
        match self {
            WorkloadSpec::Eval {
                tasks,
                samples,
                seed,
                technique,
            } => obj([
                ("kind", Json::Str("eval".into())),
                ("tasks", Json::Int(*tasks as i128)),
                ("samples", Json::Int(*samples as i128)),
                ("seed", Json::Int(*seed as i128)),
                ("technique", Json::Str(technique.as_str().into())),
            ]),
            WorkloadSpec::QecSweep {
                distance,
                rounds,
                trials,
                seed,
                points,
            } => obj([
                ("kind", Json::Str("qec".into())),
                ("distance", Json::Int(*distance as i128)),
                ("rounds", Json::Int(*rounds as i128)),
                ("trials", Json::Int(*trials as i128)),
                ("seed", Json::Int(*seed as i128)),
                ("points", Json::Int(*points as i128)),
            ]),
        }
    }

    /// Parses the wire form.
    pub fn from_json(value: &Json) -> Result<WorkloadSpec, String> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("workload missing `kind`")?;
        let field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("workload missing or invalid `{key}`"))
        };
        match kind {
            "eval" => {
                let technique = value
                    .get("technique")
                    .and_then(Json::as_str)
                    .and_then(Technique::parse)
                    .ok_or("workload has unknown `technique`")?;
                Ok(WorkloadSpec::Eval {
                    tasks: field("tasks")? as usize,
                    samples: field("samples")? as usize,
                    seed: field("seed")?,
                    technique,
                })
            }
            "qec" => Ok(WorkloadSpec::QecSweep {
                distance: field("distance")? as usize,
                rounds: field("rounds")? as usize,
                trials: field("trials")?,
                seed: field("seed")?,
                points: field("points")? as usize,
            }),
            other => Err(format!("unknown workload kind `{other}`")),
        }
    }

    /// Builds the per-process state a worker (or the merge) needs.
    pub fn build_ctx(&self) -> WorkloadCtx {
        match self {
            WorkloadSpec::Eval { tasks, .. } => WorkloadCtx {
                llm: Some(CodeLlm::new()),
                tasks: test_suite().into_iter().take(*tasks).collect(),
            },
            WorkloadSpec::QecSweep { .. } => WorkloadCtx {
                llm: None,
                tasks: Vec::new(),
            },
        }
    }

    /// Physical error rate for QEC sweep point `i`: a geometric ladder
    /// from [`QEC_P_LO`] to [`QEC_P_HI`]. Pure function of the spec, so
    /// workers and the merge compute identical values.
    pub fn qec_rate(&self, point: usize, points: usize) -> f64 {
        if points <= 1 {
            return QEC_P_LO;
        }
        let t = point as f64 / (points - 1) as f64;
        QEC_P_LO * (QEC_P_HI / QEC_P_LO).powf(t)
    }

    /// Worker side: grades units `[start, end)` single-threaded (process
    /// fan-out is the parallelism unit) and returns one integer row per
    /// unit, in unit order.
    ///
    /// Errors are deterministic workload failures — the same range would
    /// fail on any worker.
    pub fn run_range(
        &self,
        ctx: &WorkloadCtx,
        start: usize,
        end: usize,
    ) -> Result<Vec<Vec<u64>>, String> {
        if start > end || end > self.units() {
            return Err(format!(
                "range {start}..{end} out of bounds for {} units",
                self.units()
            ));
        }
        match self {
            WorkloadSpec::Eval {
                samples,
                seed,
                technique,
                ..
            } => {
                let llm = ctx.llm.as_ref().ok_or("eval context without a model")?;
                let config = technique.gen_config();
                let evals = report::evaluate_range(
                    llm, &ctx.tasks, &config, *samples, *seed, start, end, 1,
                );
                Ok(evals
                    .into_iter()
                    .enumerate()
                    .map(|(offset, te)| {
                        vec![
                            (start + offset) as u64,
                            te.samples as u64,
                            te.syntactic_ok as u64,
                            te.passed as u64,
                        ]
                    })
                    .collect())
            }
            WorkloadSpec::QecSweep {
                distance,
                rounds,
                trials,
                seed,
                points,
            } => (start..end)
                .map(|point| {
                    let noise = NoiseModel::uniform_depolarizing(self.qec_rate(point, *points));
                    let point_seed = qsim::exec::derive_seed(*seed, point as u64);
                    let r = circuit_level_experiment_threaded(
                        *distance, &noise, *rounds, *trials, point_seed, 1,
                    )
                    .map_err(|e| format!("qec point {point}: {e}"))?;
                    // The rate crosses the pipe as raw bits: exact, so the
                    // merged sweep equals the in-process one bit-for-bit.
                    Ok(vec![point as u64, r.p_logical.to_bits()])
                })
                .collect(),
        }
    }

    /// Coordinator side: folds the concatenation of all range rows (in
    /// unit order) into the final report, through the same seam the
    /// single-process path uses.
    pub fn merge(&self, rows: Vec<Vec<u64>>) -> Result<ShardReport, ShardError> {
        let bad = |msg: String| ShardError::Protocol(msg);
        if rows.len() != self.units() {
            return Err(bad(format!(
                "merge expected {} rows, got {}",
                self.units(),
                rows.len()
            )));
        }
        match self {
            WorkloadSpec::Eval { technique, .. } => {
                let ctx = self.build_ctx();
                let mut evals = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let [t_idx, samples, syntactic_ok, passed] = row.as_slice() else {
                        return Err(bad(format!("eval row {i} is not 4 cells")));
                    };
                    if *t_idx as usize != i {
                        return Err(bad(format!("eval row {i} carries task index {t_idx}")));
                    }
                    evals.push(TaskEval {
                        difficulty: ctx.tasks[i].difficulty(),
                        samples: *samples as usize,
                        syntactic_ok: *syntactic_ok as usize,
                        passed: *passed as usize,
                    });
                }
                Ok(ShardReport::Eval(report::fold_outcome(
                    technique.gen_config().label,
                    evals,
                )))
            }
            WorkloadSpec::QecSweep {
                distance,
                trials,
                points,
                ..
            } => {
                let mut results = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let [point, bits] = row.as_slice() else {
                        return Err(bad(format!("qec row {i} is not 2 cells")));
                    };
                    if *point as usize != i {
                        return Err(bad(format!("qec row {i} carries point {point}")));
                    }
                    results.push(MemoryResult {
                        distance: *distance,
                        p_physical: self.qec_rate(i, *points),
                        p_logical: f64::from_bits(*bits),
                        trials: *trials as usize,
                        decoder: "greedy-matching(circuit-level)",
                    });
                }
                Ok(ShardReport::Qec(results))
            }
        }
    }

    /// The single-process reference: the exact result a sharded run must
    /// reproduce bit-for-bit.
    pub fn run_serial(&self) -> Result<ShardReport, ShardError> {
        self.validate()?;
        match self {
            WorkloadSpec::Eval {
                samples,
                seed,
                technique,
                ..
            } => {
                let ctx = self.build_ctx();
                let llm = ctx.llm.as_ref().expect("eval context has a model");
                Ok(ShardReport::Eval(report::evaluate_parallel(
                    llm,
                    &ctx.tasks,
                    &technique.gen_config(),
                    *samples,
                    *seed,
                    qsim::exec::recommended_threads(),
                )))
            }
            WorkloadSpec::QecSweep {
                distance,
                rounds,
                trials,
                seed,
                points,
            } => {
                let threads = qsim::exec::recommended_threads();
                let results = (0..*points)
                    .map(|point| {
                        let noise = NoiseModel::uniform_depolarizing(self.qec_rate(point, *points));
                        circuit_level_experiment_threaded(
                            *distance,
                            &noise,
                            *rounds,
                            *trials,
                            qsim::exec::derive_seed(*seed, point as u64),
                            threads,
                        )
                        .map_err(|e| ShardError::Workload(format!("qec point {point}: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ShardReport::Qec(results))
            }
        }
    }
}

impl ShardReport {
    /// Canonical JSON form — the byte string the determinism contract is
    /// stated over: two runs are "bit-identical" iff these encodings are
    /// equal.
    pub fn to_json(&self) -> Json {
        match self {
            ShardReport::Eval(o) => {
                let per_difficulty = Json::Obj(
                    o.per_difficulty
                        .iter()
                        .map(|(d, &(passed, total))| {
                            (
                                d.to_string(),
                                Json::Arr(vec![
                                    Json::Int(passed as i128),
                                    Json::Int(total as i128),
                                ]),
                            )
                        })
                        .collect::<BTreeMap<_, _>>(),
                );
                let per_task = Json::Arr(
                    o.per_task
                        .iter()
                        .map(|&(n, c)| Json::Arr(vec![Json::Int(n as i128), Json::Int(c as i128)]))
                        .collect(),
                );
                obj([
                    ("kind", Json::Str("eval".into())),
                    ("label", Json::Str(o.label.clone())),
                    ("samples", Json::Int(o.samples as i128)),
                    ("syntactic_ok", Json::Int(o.syntactic_ok as i128)),
                    ("passed", Json::Int(o.passed as i128)),
                    ("per_difficulty", per_difficulty),
                    ("per_task", per_task),
                ])
            }
            ShardReport::Qec(results) => {
                let points = results
                    .iter()
                    .map(|r| {
                        obj([
                            ("distance", Json::Int(r.distance as i128)),
                            // Bits, not decimal text: the contract is
                            // exactness, not pretty printing.
                            ("p_physical_bits", Json::Int(r.p_physical.to_bits() as i128)),
                            ("p_logical_bits", Json::Int(r.p_logical.to_bits() as i128)),
                            ("p_logical", Json::Float(r.p_logical)),
                            ("trials", Json::Int(r.trials as i128)),
                            ("decoder", Json::Str(r.decoder.into())),
                        ])
                    })
                    .collect();
                obj([
                    ("kind", Json::Str("qec".into())),
                    ("points", Json::Arr(points)),
                ])
            }
        }
    }

    /// Human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        match self {
            ShardReport::Eval(o) => qeval::report::render_markdown(std::slice::from_ref(o)),
            ShardReport::Qec(results) => {
                let mut out =
                    String::from("| d | p_physical | p_logical | trials |\n|---|---|---|---|\n");
                for r in results {
                    let _ = writeln!(
                        out,
                        "| {} | {:.5} | {:.5} | {} |",
                        r.distance, r.p_physical, r.p_logical, r.trials
                    );
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_the_wire_form() {
        let specs = [
            WorkloadSpec::Eval {
                tasks: 34,
                samples: 8,
                seed: u64::MAX,
                technique: Technique::Scot,
            },
            WorkloadSpec::QecSweep {
                distance: 7,
                rounds: 2,
                trials: 500,
                seed: 99,
                points: 6,
            },
        ];
        for spec in specs {
            let json = spec.to_json();
            let parsed = WorkloadSpec::from_json(&json).unwrap();
            assert_eq!(parsed, spec);
            // Canonical: encoding is stable across the round trip.
            assert_eq!(parsed.to_json().encode(), json.encode());
        }
    }

    #[test]
    fn invalid_specs_are_rejected_before_spawning_anything() {
        let bads = [
            WorkloadSpec::Eval {
                tasks: 0,
                samples: 1,
                seed: 0,
                technique: Technique::Base,
            },
            WorkloadSpec::Eval {
                tasks: 1000,
                samples: 1,
                seed: 0,
                technique: Technique::Base,
            },
            WorkloadSpec::QecSweep {
                distance: 4,
                rounds: 1,
                trials: 1,
                seed: 0,
                points: 1,
            },
            WorkloadSpec::QecSweep {
                distance: 3,
                rounds: 0,
                trials: 1,
                seed: 0,
                points: 1,
            },
        ];
        for spec in bads {
            assert_eq!(spec.validate().unwrap_err().code(), "bad_workload");
        }
    }

    #[test]
    fn eval_range_rows_merge_to_the_serial_outcome() {
        let spec = WorkloadSpec::Eval {
            tasks: 6,
            samples: 2,
            seed: 17,
            technique: Technique::FineTuned,
        };
        let ctx = spec.build_ctx();
        let mut rows = Vec::new();
        for (start, end) in report::partition_ranges(spec.units(), 2) {
            rows.extend(spec.run_range(&ctx, start, end).unwrap());
        }
        let merged = spec.merge(rows).unwrap();
        let serial = spec.run_serial().unwrap();
        assert_eq!(merged, serial);
        assert_eq!(merged.to_json().encode(), serial.to_json().encode());
    }

    #[test]
    fn qec_rows_merge_bit_identically() {
        let spec = WorkloadSpec::QecSweep {
            distance: 3,
            rounds: 1,
            trials: 60,
            seed: 5,
            points: 3,
        };
        let ctx = spec.build_ctx();
        let rows = spec.run_range(&ctx, 0, 3).unwrap();
        let merged = spec.merge(rows).unwrap();
        let serial = spec.run_serial().unwrap();
        assert_eq!(merged, serial);
        assert_eq!(merged.to_json().encode(), serial.to_json().encode());
    }

    #[test]
    fn technique_names_round_trip() {
        for t in [
            Technique::Base,
            Technique::FineTuned,
            Technique::Rag,
            Technique::Cot,
            Technique::Scot,
        ] {
            assert_eq!(Technique::parse(t.as_str()), Some(t));
        }
        assert_eq!(Technique::parse("quantum-vibes"), None);
    }
}
