//! The coordinator ↔ worker wire vocabulary.
//!
//! One JSON value per line over the worker's stdio pipes, encoded through
//! the shared [`qugen_wire::codec`] — the same value layer `qugen-serve`
//! speaks, so integers (seeds, counts, `f64` bit patterns) survive the
//! wire exactly and every message has one canonical byte encoding.
//!
//! Result rows are arrays of non-negative integers whose meaning belongs
//! to the workload layer ([`crate::workload`]); the proto layer only
//! guarantees they transfer losslessly. Keeping floats off the wire (QEC
//! logical error rates travel as `f64::to_bits`) is what makes the merged
//! report bit-identical to the single-process run by construction rather
//! than by rounding luck.

use crate::error::ShardError;
use crate::workload::WorkloadSpec;
use qugen_wire::codec::{obj, Json};

/// A message the coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// First message on the pipe: the workload this worker will serve.
    Init {
        /// The full workload specification (workers rebuild task lists
        /// and noise ladders locally from it; only integers travel).
        spec: WorkloadSpec,
    },
    /// Grade units `[start, end)` and reply with a `rows` message
    /// carrying the same `id`.
    Range {
        /// Coordinator-side range index (echoed back for matching).
        id: usize,
        /// First unit (inclusive).
        start: usize,
        /// One past the last unit.
        end: usize,
    },
    /// Finish up and exit cleanly.
    Exit,
}

impl ToWorker {
    /// Canonical one-line encoding.
    pub fn encode(&self) -> String {
        match self {
            ToWorker::Init { spec } => obj([
                ("op", Json::Str("init".into())),
                ("workload", spec.to_json()),
            ])
            .encode(),
            ToWorker::Range { id, start, end } => obj([
                ("op", Json::Str("range".into())),
                ("id", Json::Int(*id as i128)),
                ("start", Json::Int(*start as i128)),
                ("end", Json::Int(*end as i128)),
            ])
            .encode(),
            ToWorker::Exit => obj([("op", Json::Str("exit".into()))]).encode(),
        }
    }

    /// Parses one coordinator line (worker side).
    pub fn parse(line: &str) -> Result<ToWorker, String> {
        let value = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing `op`")?;
        match op {
            "init" => {
                let spec = value.get("workload").ok_or("init without `workload`")?;
                Ok(ToWorker::Init {
                    spec: WorkloadSpec::from_json(spec)?,
                })
            }
            "range" => Ok(ToWorker::Range {
                id: require_usize(&value, "id")?,
                start: require_usize(&value, "start")?,
                end: require_usize(&value, "end")?,
            }),
            "exit" => Ok(ToWorker::Exit),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// A message a worker sends back to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum FromWorker {
    /// Init acknowledged; the worker is ready for ranges.
    Ready {
        /// The rank the worker was launched with (sanity-checked by the
        /// coordinator against the pipe it arrived on).
        rank: usize,
    },
    /// The result rows for one completed range.
    Rows {
        /// Echo of the range id from the request.
        id: usize,
        /// One integer row per unit, in unit order within the range.
        rows: Vec<Vec<u64>>,
    },
    /// A deterministic workload failure (retrying elsewhere would fail
    /// identically).
    Failed {
        /// What went wrong, for the coordinator's typed error.
        message: String,
    },
}

impl FromWorker {
    /// Canonical one-line encoding.
    pub fn encode(&self) -> String {
        match self {
            FromWorker::Ready { rank } => obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("ready".into())),
                ("rank", Json::Int(*rank as i128)),
            ])
            .encode(),
            FromWorker::Rows { id, rows } => {
                let rows = rows
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|&v| Json::Int(v as i128)).collect()))
                    .collect();
                obj([
                    ("ok", Json::Bool(true)),
                    ("op", Json::Str("rows".into())),
                    ("id", Json::Int(*id as i128)),
                    ("rows", Json::Arr(rows)),
                ])
                .encode()
            }
            FromWorker::Failed { message } => obj([
                ("ok", Json::Bool(false)),
                ("message", Json::Str(message.clone())),
            ])
            .encode(),
        }
    }

    /// Parses one worker line (coordinator side).
    pub fn parse(line: &str) -> Result<FromWorker, ShardError> {
        let bad = |msg: String| ShardError::Protocol(msg);
        let value = Json::parse(line).map_err(|e| bad(format!("worker sent invalid JSON: {e}")))?;
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => {
                let message = value
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("worker failed without a message")
                    .to_string();
                return Ok(FromWorker::Failed { message });
            }
            None => return Err(bad("worker reply missing `ok`".into())),
        }
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("worker reply missing `op`".into()))?;
        match op {
            "ready" => Ok(FromWorker::Ready {
                rank: require_usize(&value, "rank").map_err(bad)?,
            }),
            "rows" => {
                let id = require_usize(&value, "id").map_err(bad)?;
                let rows = match value.get("rows") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|row| match row {
                            Json::Arr(cells) => cells
                                .iter()
                                .map(|c| {
                                    c.as_u64()
                                        .ok_or_else(|| bad("row cell is not a u64".into()))
                                })
                                .collect::<Result<Vec<u64>, _>>(),
                            _ => Err(bad("row is not an array".into())),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(bad("rows reply missing `rows` array".into())),
                };
                Ok(FromWorker::Rows { id, rows })
            }
            other => Err(bad(format!("unknown worker op `{other}`"))),
        }
    }
}

/// Pulls a required non-negative integer field as `usize`.
fn require_usize(value: &Json, key: &str) -> Result<usize, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| format!("missing or invalid `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Technique, WorkloadSpec};

    #[test]
    fn coordinator_messages_round_trip() {
        let messages = [
            ToWorker::Init {
                spec: WorkloadSpec::Eval {
                    tasks: 12,
                    samples: 4,
                    seed: u64::MAX - 3,
                    technique: Technique::Scot,
                },
            },
            ToWorker::Range {
                id: 7,
                start: 14,
                end: 16,
            },
            ToWorker::Exit,
        ];
        for m in messages {
            let line = m.encode();
            assert_eq!(ToWorker::parse(&line).unwrap(), m, "{line}");
        }
    }

    #[test]
    fn worker_messages_round_trip_with_exact_u64_rows() {
        let messages = [
            FromWorker::Ready { rank: 3 },
            FromWorker::Rows {
                id: 2,
                // A full-range f64 bit pattern must survive the wire.
                rows: vec![vec![5, f64::to_bits(0.12345)], vec![6, u64::MAX]],
            },
            FromWorker::Failed {
                message: "simulator refused".into(),
            },
        ];
        for m in messages {
            let line = m.encode();
            assert_eq!(FromWorker::parse(&line).unwrap(), m, "{line}");
        }
    }

    #[test]
    fn malformed_worker_lines_are_typed_protocol_errors() {
        for bad in [
            "not json",
            "{}",
            "{\"ok\":true}",
            "{\"ok\":true,\"op\":\"rows\",\"id\":0}",
            "{\"ok\":true,\"op\":\"rows\",\"id\":0,\"rows\":[[-1]]}",
            "{\"ok\":true,\"op\":\"mystery\"}",
        ] {
            let err = FromWorker::parse(bad).unwrap_err();
            assert_eq!(err.code(), "protocol", "{bad}");
        }
    }
}
