//! # qugen-shard — multi-process evaluation sharding
//!
//! `evaluate_parallel`'s determinism contract (per-sample seeds depend
//! only on global grid indices; partial results fold in task order) means
//! fanning the task×sample grid across worker *processes* is purely a
//! merge problem. This crate is that fan-out: a coordinator self-execs N
//! workers (`qugen-shard --worker`), deals unit ranges over stdio pipes
//! using the shared [`qugen_wire`] codec, and folds the returned rows in
//! deterministic range order. The merged report is **bit-identical** to
//! the single-process run for any worker count, any range size, and any
//! completion order — verified by property tests and by the CI smoke job.
//!
//! * [`workload`] — the flagship workloads (paper eval suite, d7 QEC
//!   memory sweep): unit grids, integer wire rows, and the merge fold.
//! * [`proto`] — the coordinator↔worker line vocabulary over
//!   [`qugen_wire::codec`] (the same value layer `qugen-serve` speaks).
//! * [`coordinator`] — process supervision: range deque, per-worker
//!   deadline, reassign-once on death/timeout, deterministic fold.
//! * [`worker`] — the stdin→stdout range server.
//! * [`error`] — [`ShardError`], every failure with a stable code.
//!
//! # Failure semantics
//!
//! A worker that dies or misses the per-range deadline is killed and its
//! range reassigned exactly once; a second failure is a typed
//! [`error::ShardError::RangeFailed`]. The pool shrinks rather than
//! respawns; losing every worker with work outstanding is
//! [`error::ShardError::WorkersExhausted`]. Deterministic workload
//! failures (a refused circuit) are never retried.

pub mod coordinator;
pub mod error;
pub mod proto;
pub mod worker;
pub mod workload;

pub use coordinator::{run_sharded, run_sharded_with_stats, ShardConfig, ShardStats, WorkerStats};
pub use error::ShardError;
pub use workload::{ShardReport, Technique, WorkloadSpec};
