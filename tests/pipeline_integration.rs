//! Cross-crate integration tests: the full pipeline from prompt to graded,
//! error-corrected program.

use qugen::qagents::orchestrator::{Orchestrator, PipelineConfig, QecStage};
use qugen::qec::topology::Topology;
use qugen::qeval::report::evaluate;
use qugen::qeval::suite::test_suite;
use qugen::qlm::model::{CodeLlm, GenConfig};

#[test]
fn default_pipeline_processes_every_suite_task() {
    let orchestrator = Orchestrator::new(PipelineConfig::default());
    let tasks = test_suite();
    let reports = orchestrator.run_suite(&tasks, 77);
    assert_eq!(reports.len(), tasks.len());
    // Every report must carry at least a prompt and one generation.
    for report in &reports {
        assert!(report.transcript.len() >= 2, "{}", report.task_id);
        assert!(report.multipass.passes_used() >= 1);
        assert!(report.multipass.passes_used() <= 3);
    }
    // With the fine-tuned model a sensible fraction should pass.
    let passed = reports.iter().filter(|r| r.passed()).count();
    assert!(
        passed >= tasks.len() / 5,
        "only {passed}/{} tasks passed",
        tasks.len()
    );
}

#[test]
fn technique_ordering_reproduces_figure3_shape() {
    let llm = CodeLlm::new();
    let tasks = test_suite();
    let samples = 10;
    let seed = 1234;
    let base = evaluate(&llm, &tasks, &GenConfig::base(), samples, seed).pass_rate();
    let tuned = evaluate(&llm, &tasks, &GenConfig::fine_tuned(), samples, seed).pass_rate();
    let rag = evaluate(&llm, &tasks, &GenConfig::with_rag(), samples, seed).pass_rate();
    let cot = evaluate(&llm, &tasks, &GenConfig::with_cot(), samples, seed).pass_rate();
    let scot = evaluate(&llm, &tasks, &GenConfig::with_scot(), samples, seed).pass_rate();

    assert!(base < tuned, "base {base} !< tuned {tuned}");
    assert!(tuned <= rag + 0.02, "tuned {tuned} !<= rag {rag} (+eps)");
    assert!(rag < cot, "rag {rag} !< cot {cot}");
    assert!(cot < scot + 0.03, "cot {cot} !< scot {scot} (+eps)");
    // RAG is a small delta; CoT is a large one (the paper's headline).
    assert!(rag - tuned < 0.10, "rag delta too large: {}", rag - tuned);
    assert!(cot - tuned > 0.04, "cot delta too small: {}", cot - tuned);
}

#[test]
fn qec_stage_improves_fidelity_on_dj() {
    let config = PipelineConfig {
        gen: GenConfig::with_scot(),
        max_passes: 3,
        qec: Some(QecStage {
            topology: Topology::grid(7, 7),
            physical_rate: 0.02,
            noise: qugen::qsim::profiles::ibm_brisbane_like(),
            shots: 2048,
        }),
    };
    let orchestrator = Orchestrator::new(config);
    let task = test_suite()
        .into_iter()
        .find(|t| t.id == "mid/dj-const")
        .expect("dj task present");
    for seed in 0..40 {
        let report = orchestrator.run_task(&task, seed);
        if let Some(qec) = &report.qec {
            assert!(
                qec.corrected_tvd() <= qec.noisy_tvd() + 0.01,
                "QEC must not hurt: {} vs {}",
                qec.corrected_tvd(),
                qec.noisy_tvd()
            );
            assert!(qec.spec.estimated_lifetime_extension > 1.0);
            return;
        }
    }
    panic!("no compiling generation in 40 seeds");
}

#[test]
fn multipass_repairs_recover_some_failures() {
    let llm = CodeLlm::new();
    let codegen = qugen::qagents::codegen::CodeGenAgent::new(llm, GenConfig::fine_tuned());
    let analyzer = qugen::qagents::semantic::SemanticAnalyzerAgent::new();
    let tasks = test_suite();
    let mut first_pass = 0usize;
    let mut third_pass = 0usize;
    let mut total = 0usize;
    for (i, task) in tasks.iter().enumerate() {
        for s in 0..6u64 {
            let seed = (i as u64) * 131 + s;
            let result =
                qugen::qagents::multipass::run_multipass(&codegen, &analyzer, &task.spec, 3, seed);
            total += 1;
            if result.first_passing() == Some(1) {
                first_pass += 1;
            }
            if result.passed() {
                third_pass += 1;
            }
        }
    }
    assert!(third_pass > first_pass, "{third_pass} !> {first_pass}");
    // Saturating, not magic: the repair loop cannot double accuracy.
    assert!(
        (third_pass - first_pass) as f64 / total as f64 <= 0.25,
        "repair gain implausibly large"
    );
}

#[test]
fn generated_code_grades_deterministically() {
    let llm = CodeLlm::new();
    let spec = &test_suite()[5].spec;
    let config = GenConfig::with_rag();
    let g1 = llm.generate(spec, &config, 999);
    let g2 = llm.generate(spec, &config, 999);
    assert_eq!(g1.source, g2.source);
    let d1 = qugen::qeval::grade::grade_source(&g1.source, spec);
    let d2 = qugen::qeval::grade::grade_source(&g2.source, spec);
    assert_eq!(d1.passed(), d2.passed());
    assert_eq!(d1.tvd, d2.tvd);
}
