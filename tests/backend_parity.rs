//! Backend-parity and parallel-determinism properties of the unified
//! simulation-backend layer.
//!
//! * Dense and tableau backends must agree on random Clifford circuits:
//!   exactly when every measurement is determined, and within sampling
//!   tolerance otherwise.
//! * Parallel shot execution with a fixed seed must reproduce the
//!   single-threaded `Counts` bit for bit, on every backend and path.

use proptest::prelude::*;
use qugen::qcir::circuit::Circuit;
use qugen::qcir::gate::Gate;
use qugen::qsim::backend::BackendChoice;
use qugen::qsim::dist::Counts;
use qugen::qsim::exec::Executor;
use qugen::qsim::noise::NoiseModel;

const N: usize = 5;

/// Strategy: one random Clifford op (gate, measure or reset) over `N`
/// qubits, encoded as (selector, q, offset).
fn arb_clifford_op() -> impl Strategy<Value = (u8, usize, usize)> {
    (0u8..13, 0..N, 1..N)
}

/// Builds a Clifford circuit with interleaved measurement/reset from the
/// encoded op stream, ending in a full measurement so every qubit is read.
fn clifford_circuit(ops: &[(u8, usize, usize)]) -> Circuit {
    let mut qc = Circuit::new(N, N);
    for &(sel, q, off) in ops {
        let p = (q + off) % N;
        match sel {
            0 => {
                qc.h(q);
            }
            1 => {
                qc.s(q);
            }
            2 => {
                qc.sdg(q);
            }
            3 => {
                qc.x(q);
            }
            4 => {
                qc.y(q);
            }
            5 => {
                qc.z(q);
            }
            6 => {
                qc.push_gate(Gate::SX, &[q]);
            }
            7 => {
                qc.cx(q, p);
            }
            8 => {
                qc.cz(q, p);
            }
            9 => {
                qc.swap(q, p);
            }
            10 => {
                qc.measure(q, q);
            }
            11 => {
                qc.reset(q);
            }
            _ => {
                qc.cond_gate(Gate::X, &[p], q, true);
            }
        }
    }
    qc.measure_all();
    qc
}

fn run_forced(backend: BackendChoice, qc: &Circuit, shots: u64, seed: u64) -> Counts {
    Executor::ideal().with_backend(backend).run(qc, shots, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense and tableau sampled distributions agree on random Clifford
    /// circuits with mid-circuit measurement, reset and classical control.
    #[test]
    fn dense_and_tableau_agree_on_random_clifford_circuits(
        ops in prop::collection::vec(arb_clifford_op(), 0..30),
        seed in 0u64..1_000,
    ) {
        let qc = clifford_circuit(&ops);
        // Clifford distributions are uniform over up to 2^5 outcomes here;
        // at 8192 shots the empirical TVD between two independent samples
        // concentrates around 0.04, well inside the tolerance.
        let shots = 8192;
        let dense = run_forced(BackendChoice::Dense, &qc, shots, seed).to_distribution();
        let tableau = run_forced(BackendChoice::Tableau, &qc, shots, seed ^ 0xABCD).to_distribution();
        let tvd = dense.tvd(&tableau);
        prop_assert!(tvd < 0.12, "dense vs tableau tvd = {tvd}");
    }

    /// Determined circuits (no superposition before any measurement) must
    /// agree *exactly*: every shot yields the same word on both backends.
    #[test]
    fn backends_agree_exactly_on_determined_circuits(
        flips in prop::collection::vec(0u8..2, N),
        chain in 0u8..2,
    ) {
        let mut qc = Circuit::new(N, N);
        for (q, &flip) in flips.iter().enumerate() {
            if flip == 1 {
                qc.x(q);
            }
        }
        if chain == 1 {
            // CX ladder keeps the state classical (basis state in, basis
            // state out), so measurements stay determined.
            for q in 0..N - 1 {
                qc.cx(q, q + 1);
            }
        }
        qc.measure_all();
        let dense = run_forced(BackendChoice::Dense, &qc, 64, 5);
        let tableau = run_forced(BackendChoice::Tableau, &qc, 64, 99);
        prop_assert_eq!(dense.distinct_outcomes(), 1);
        prop_assert_eq!(&dense, &tableau);
    }

    /// Fixed-seed parallel execution reproduces the single-threaded counts
    /// bit for bit on both backends, with and without noise.
    #[test]
    fn parallel_execution_is_deterministic(
        ops in prop::collection::vec(arb_clifford_op(), 0..20),
        seed in 0u64..1_000,
        threads in 2usize..6,
        noisy in 0u8..2,
    ) {
        let qc = clifford_circuit(&ops);
        let noise = if noisy == 1 {
            NoiseModel::uniform_depolarizing(0.01)
        } else {
            NoiseModel::ideal()
        };
        for backend in [BackendChoice::Dense, BackendChoice::Tableau] {
            let exec = Executor::with_noise(noise.clone()).with_backend(backend);
            let serial = exec.clone().run(&qc, 3000, seed);
            let parallel = exec.clone().with_threads(threads).run(&qc, 3000, seed);
            prop_assert_eq!(&serial, &parallel, "backend {:?}", backend);
        }
    }
}

#[test]
fn distance5_memory_circuit_runs_end_to_end() {
    // The acceptance workload: a 49-qubit Clifford syndrome-extraction
    // circuit through the Executor — impossible before the backend layer.
    let code = qugen::qec::surface::SurfaceCode::new(5);
    let mem = code.memory_circuit(2);
    assert_eq!(mem.circuit.num_qubits(), 49);
    let counts = Executor::with_noise(NoiseModel::uniform_depolarizing(0.002))
        .with_threads(4)
        .try_run(&mem.circuit, 200, 31)
        .expect("tableau dispatch handles 49-qubit Clifford circuits");
    assert_eq!(counts.shots(), 200);
}
