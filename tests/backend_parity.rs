//! Backend-parity and parallel-determinism properties of the unified
//! simulation-backend layer.
//!
//! * Dense, tableau and MPS backends must agree pairwise on the circuit
//!   classes they share: all three on random Clifford circuits, dense and
//!   MPS (at untruncated χ) on random general circuits — exactly when
//!   every measurement is determined, and within sampling tolerance
//!   otherwise.
//! * Parallel shot execution with a fixed seed must reproduce the
//!   single-threaded `Counts` bit for bit, on every backend and path.

use proptest::prelude::*;
use qugen::qcir::circuit::Circuit;
use qugen::qcir::gate::Gate;
use qugen::qsim::backend::BackendChoice;
use qugen::qsim::dist::Counts;
use qugen::qsim::exec::ExecutorConfig;
use qugen::qsim::noise::NoiseModel;

const N: usize = 5;

/// Untruncated bond bound for `N`-qubit circuits: χ = 2^⌊N/2⌋ holds any
/// state exactly, so MPS parity failures would be real bugs, not
/// truncation artifacts.
const EXACT_CHI: usize = 1 << (N / 2);

/// Strategy: one random Clifford op (gate, measure or reset) over `N`
/// qubits, encoded as (selector, q, offset).
fn arb_clifford_op() -> impl Strategy<Value = (u8, usize, usize)> {
    (0u8..13, 0..N, 1..N)
}

/// Builds a Clifford circuit with interleaved measurement/reset from the
/// encoded op stream, ending in a full measurement so every qubit is read.
fn clifford_circuit(ops: &[(u8, usize, usize)]) -> Circuit {
    let mut qc = Circuit::new(N, N);
    for &(sel, q, off) in ops {
        let p = (q + off) % N;
        match sel {
            0 => {
                qc.h(q);
            }
            1 => {
                qc.s(q);
            }
            2 => {
                qc.sdg(q);
            }
            3 => {
                qc.x(q);
            }
            4 => {
                qc.y(q);
            }
            5 => {
                qc.z(q);
            }
            6 => {
                qc.push_gate(Gate::SX, &[q]);
            }
            7 => {
                qc.cx(q, p);
            }
            8 => {
                qc.cz(q, p);
            }
            9 => {
                qc.swap(q, p);
            }
            10 => {
                qc.measure(q, q);
            }
            11 => {
                qc.reset(q);
            }
            _ => {
                qc.cond_gate(Gate::X, &[p], q, true);
            }
        }
    }
    qc.measure_all();
    qc
}

/// A general (non-Clifford) circuit with interleaved measurement/reset
/// from the same encoded op stream: T, rotations and Toffolis replace some
/// Clifford selectors so every case leaves the stabilizer class.
fn general_circuit(ops: &[(u8, usize, usize)]) -> Circuit {
    let mut qc = Circuit::new(N, N);
    for &(sel, q, off) in ops {
        let p = (q + off) % N;
        match sel {
            0 => {
                qc.h(q);
            }
            1 => {
                qc.t(q);
            }
            2 => {
                qc.tdg(q);
            }
            3 => {
                qc.ry(0.3 + q as f64, q);
            }
            4 => {
                qc.rz(0.7 + off as f64, q);
            }
            5 => {
                qc.x(q);
            }
            6 => {
                qc.cp(0.5 + q as f64, q, p);
            }
            7 => {
                qc.cx(q, p);
            }
            8 => {
                qc.cz(q, p);
            }
            9 => {
                let r = (q + 1) % N;
                if r != q && r != p {
                    qc.ccx(q, p, r);
                }
            }
            10 => {
                qc.measure(q, q);
            }
            11 => {
                qc.reset(q);
            }
            _ => {
                qc.cond_gate(Gate::X, &[p], q, true);
            }
        }
    }
    qc.t(0); // guarantee the general class even for short streams
    qc.measure_all();
    qc
}

fn run_forced(backend: BackendChoice, qc: &Circuit, shots: u64, seed: u64) -> Counts {
    ExecutorConfig::new()
        .backend(backend)
        .build()
        .try_run(qc, shots, seed)
        .expect("parity circuits fit every forced backend")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense and tableau sampled distributions agree on random Clifford
    /// circuits with mid-circuit measurement, reset and classical control.
    #[test]
    fn dense_and_tableau_agree_on_random_clifford_circuits(
        ops in prop::collection::vec(arb_clifford_op(), 0..30),
        seed in 0u64..1_000,
    ) {
        let qc = clifford_circuit(&ops);
        // Clifford distributions are uniform over up to 2^5 outcomes here;
        // at 8192 shots the empirical TVD between two independent samples
        // concentrates around 0.04, well inside the tolerance.
        let shots = 8192;
        let dense = run_forced(BackendChoice::Dense, &qc, shots, seed).to_distribution();
        let tableau = run_forced(BackendChoice::Tableau, &qc, shots, seed ^ 0xABCD).to_distribution();
        let tvd = dense.tvd(&tableau);
        prop_assert!(tvd < 0.12, "dense vs tableau tvd = {tvd}");
    }

    /// Determined circuits (no superposition before any measurement) must
    /// agree *exactly*: every shot yields the same word on all three
    /// backends.
    #[test]
    fn backends_agree_exactly_on_determined_circuits(
        flips in prop::collection::vec(0u8..2, N),
        chain in 0u8..2,
    ) {
        let mut qc = Circuit::new(N, N);
        for (q, &flip) in flips.iter().enumerate() {
            if flip == 1 {
                qc.x(q);
            }
        }
        if chain == 1 {
            // CX ladder keeps the state classical (basis state in, basis
            // state out), so measurements stay determined.
            for q in 0..N - 1 {
                qc.cx(q, q + 1);
            }
        }
        qc.measure_all();
        let dense = run_forced(BackendChoice::Dense, &qc, 64, 5);
        let tableau = run_forced(BackendChoice::Tableau, &qc, 64, 99);
        let mps = run_forced(BackendChoice::Mps { max_bond: EXACT_CHI }, &qc, 64, 7);
        prop_assert_eq!(dense.distinct_outcomes(), 1);
        prop_assert_eq!(&dense, &tableau);
        prop_assert_eq!(&dense, &mps);
    }

    /// Fixed-seed parallel execution reproduces the single-threaded counts
    /// bit for bit on both backends, with and without noise.
    #[test]
    fn parallel_execution_is_deterministic(
        ops in prop::collection::vec(arb_clifford_op(), 0..20),
        seed in 0u64..1_000,
        threads in 2usize..6,
        noisy in 0u8..2,
    ) {
        let qc = clifford_circuit(&ops);
        let noise = if noisy == 1 {
            NoiseModel::uniform_depolarizing(0.01)
        } else {
            NoiseModel::ideal()
        };
        for backend in [BackendChoice::Dense, BackendChoice::Tableau] {
            let config = ExecutorConfig::new().noise(noise.clone()).backend(backend);
            let serial = config.clone().build().try_run(&qc, 3000, seed).expect("runnable");
            let parallel = config
                .clone()
                .threads(threads)
                .build()
                .try_run(&qc, 3000, seed)
                .expect("runnable");
            prop_assert_eq!(&serial, &parallel, "backend {:?}", backend);
        }
    }
}

// MPS parity cases run fewer shots and proptest cases: the per-shot
// trajectory replay on the MPS engine is far more expensive than on the
// dense engine at 5 qubits (it exists for *large* circuits), and the seeds
// are deterministic, so a smaller sample keeps the suite fast without
// flakiness.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// MPS at untruncated χ and the dense engine must agree on random
    /// *general* circuits (T gates, rotations, Toffolis, mid-circuit
    /// measurement and classical control) within sampling tolerance —
    /// the class only those two engines share.
    #[test]
    fn mps_and_dense_agree_on_random_general_circuits(
        ops in prop::collection::vec(arb_clifford_op(), 0..16),
        seed in 0u64..1_000,
    ) {
        let qc = general_circuit(&ops);
        let shots = 2048;
        let dense = run_forced(BackendChoice::Dense, &qc, shots, seed).to_distribution();
        let mps = run_forced(
            BackendChoice::Mps { max_bond: EXACT_CHI },
            &qc,
            shots,
            seed ^ 0x5A5A,
        )
        .to_distribution();
        let tvd = dense.tvd(&mps);
        prop_assert!(tvd < 0.15, "dense vs mps tvd = {tvd}");
    }

    /// MPS and the tableau must agree on random Clifford circuits — the
    /// third edge of the three-way parity triangle.
    #[test]
    fn mps_and_tableau_agree_on_random_clifford_circuits(
        ops in prop::collection::vec(arb_clifford_op(), 0..20),
        seed in 0u64..1_000,
    ) {
        let qc = clifford_circuit(&ops);
        let shots = 2048;
        let tableau = run_forced(BackendChoice::Tableau, &qc, shots, seed).to_distribution();
        let mps = run_forced(
            BackendChoice::Mps { max_bond: EXACT_CHI },
            &qc,
            shots,
            seed ^ 0x1234,
        )
        .to_distribution();
        let tvd = tableau.tvd(&mps);
        prop_assert!(tvd < 0.15, "tableau vs mps tvd = {tvd}");
    }

    /// Parallel MPS execution is bit-identical to serial, on both the
    /// sampling fast path (measure-at-end) and the trajectory path.
    #[test]
    fn mps_parallel_execution_is_deterministic(
        ops in prop::collection::vec(arb_clifford_op(), 0..12),
        seed in 0u64..1_000,
        threads in 2usize..5,
    ) {
        let qc = general_circuit(&ops);
        let config = ExecutorConfig::new().backend(BackendChoice::Mps { max_bond: EXACT_CHI });
        let serial = config.clone().build().try_run(&qc, 1500, seed).expect("runnable");
        let parallel = config
            .threads(threads)
            .build()
            .try_run(&qc, 1500, seed)
            .expect("runnable");
        prop_assert_eq!(&serial, &parallel);
    }
}

#[test]
fn distance5_memory_circuit_runs_end_to_end() {
    // The acceptance workload: a 49-qubit Clifford syndrome-extraction
    // circuit through the Executor — impossible before the backend layer.
    let code = qugen::qec::surface::SurfaceCode::new(5);
    let mem = code.memory_circuit(2);
    assert_eq!(mem.circuit.num_qubits(), 49);
    let counts = ExecutorConfig::new()
        .noise(NoiseModel::uniform_depolarizing(0.002))
        .threads(4)
        .build()
        .try_run(&mem.circuit, 200, 31)
        .expect("tableau dispatch handles 49-qubit Clifford circuits");
    assert_eq!(counts.shots(), 200);
}

#[test]
fn brickwork_30q_runs_on_mps_but_not_dense() {
    // The MPS acceptance workload: a 30-qubit non-Clifford brickwork
    // circuit — refused by the dense engine, auto-dispatched to MPS by the
    // short-range heuristic, and completed there.
    use qugen::qsim::backend::SimError;
    let n = 30;
    let mut qc = Circuit::new(n, n);
    for layer in 0..4 {
        for q in 0..n {
            qc.ry(0.3 + 0.1 * (q + layer) as f64, q);
        }
        for q in ((layer % 2)..n - 1).step_by(2) {
            qc.cp(0.4 + 0.05 * q as f64, q, q + 1);
        }
    }
    qc.measure_all();
    assert!(matches!(
        ExecutorConfig::new()
            .backend(BackendChoice::Dense)
            .build()
            .try_run(&qc, 64, 9),
        Err(SimError::QubitCapExceeded {
            backend: "dense",
            ..
        })
    ));
    let counts = ExecutorConfig::new()
        .threads(2)
        .build()
        .try_run(&qc, 64, 9)
        .expect("auto dispatch routes short-range general circuits to MPS");
    assert_eq!(counts.shots(), 64);
    assert_eq!(counts.num_clbits(), n);
}
