//! Smoke tests: every example under `examples/` must run to completion.
//!
//! Each example file is compiled into this test target via `#[path]` and its
//! `main` invoked directly, so `cargo test` keeps the quickstart shown in the
//! `src/lib.rs` doc comments (and the rest of the examples) honest without
//! spawning `cargo run` subprocesses.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[path = "../examples/fault_tolerant_dj.rs"]
mod fault_tolerant_dj;

#[path = "../examples/surface_code_memory.rs"]
mod surface_code_memory;

#[path = "../examples/device_targeted_vqe.rs"]
mod device_targeted_vqe;

#[path = "../examples/mps_low_entanglement.rs"]
mod mps_low_entanglement;

#[path = "../examples/technique_shootout.rs"]
mod technique_shootout;

#[path = "../examples/serve_client.rs"]
mod serve_client;

#[test]
fn quickstart_runs() {
    quickstart::main();
}

#[test]
fn fault_tolerant_dj_runs() {
    fault_tolerant_dj::main();
}

#[test]
fn surface_code_memory_runs() {
    surface_code_memory::main();
}

#[test]
fn device_targeted_vqe_runs() {
    device_targeted_vqe::main();
}

#[test]
fn mps_low_entanglement_runs() {
    mps_low_entanglement::main();
}

#[test]
fn technique_shootout_runs() {
    technique_shootout::main();
}

#[test]
fn serve_client_runs() {
    serve_client::main();
}
