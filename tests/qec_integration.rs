//! Cross-crate integration tests for the QEC stack: stabilizer simulation,
//! surface codes, decoders and the agent interface.

use qugen::qec::agent_iface::{synthesize, CodeFamily};
use qugen::qec::decoder::{Decoder, DecodingGraph, GreedyMatchingDecoder, UnionFindDecoder};
use qugen::qec::memory::code_capacity_experiment;
use qugen::qec::surface::SurfaceCode;
use qugen::qec::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn stabilizer_sim_agrees_with_surface_code_algebra() {
    // Prepare the surface-code stabilizer measurement circuit on the CHP
    // simulator and confirm a deterministic round on |0...0>: all Z
    // stabilizers read +1 (Z-type checks of the all-zeros state).
    let code = SurfaceCode::new(3);
    let n = code.num_data();
    let z_stabs = code.z_stabilizers();
    let mut sim = qugen::qsim::stabilizer::StabilizerSim::new(n + z_stabs.len());
    let mut rng = StdRng::seed_from_u64(1);
    // Measure each Z stabilizer via an ancilla: CX data -> ancilla.
    for (i, stab) in z_stabs.iter().enumerate() {
        let anc = n + i;
        for &q in &stab.support {
            sim.cx(q, anc);
        }
        assert!(!sim.measure(anc, &mut rng), "stabilizer {i} should read 0");
    }
}

#[test]
fn injected_error_is_caught_by_ancilla_readout() {
    let code = SurfaceCode::new(3);
    let n = code.num_data();
    let z_stabs = code.z_stabilizers();
    let victim = code.data_at(1, 1);
    let mut sim = qugen::qsim::stabilizer::StabilizerSim::new(n + z_stabs.len());
    let mut rng = StdRng::seed_from_u64(2);
    sim.x_gate(victim);
    let mut flagged = Vec::new();
    for (i, stab) in z_stabs.iter().enumerate() {
        let anc = n + i;
        for &q in &stab.support {
            sim.cx(q, anc);
        }
        if sim.measure(anc, &mut rng) {
            flagged.push(i);
        }
    }
    // Must match the algebraic syndrome.
    let mut errors = vec![false; n];
    errors[victim] = true;
    let expected: Vec<usize> = code
        .z_syndrome(&errors)
        .into_iter()
        .enumerate()
        .filter_map(|(i, b)| b.then_some(i))
        .collect();
    assert_eq!(flagged, expected);
}

#[test]
fn decoders_correct_random_low_weight_errors_d5() {
    let code = SurfaceCode::new(5);
    let graph = DecodingGraph::code_capacity_x(&code);
    let greedy = GreedyMatchingDecoder::new(graph.clone());
    let uf = UnionFindDecoder::new(graph.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let mut greedy_fail = 0;
    let mut uf_fail = 0;
    let trials = 300;
    for _ in 0..trials {
        let mut errors = vec![false; code.num_data()];
        // Weight-2 random error (always correctable by MWPM at d=5).
        for _ in 0..2 {
            errors[rng.gen_range(0..code.num_data())] = true;
        }
        let flagged = graph.syndrome_of(&errors);
        for (dec, fails) in [
            (&greedy as &dyn Decoder, &mut greedy_fail),
            (&uf as &dyn Decoder, &mut uf_fail),
        ] {
            let mut e = errors.clone();
            dec.decode(&flagged).apply(&mut e);
            assert!(code.z_syndrome(&e).iter().all(|&b| !b));
            if code.is_logical_x_flip(&e) {
                *fails += 1;
            }
        }
    }
    assert_eq!(greedy_fail, 0, "exact matching fails weight-2 errors");
    assert!(
        uf_fail * 10 <= trials,
        "UF failure rate too high: {uf_fail}/{trials}"
    );
}

#[test]
fn agent_synthesis_matches_memory_experiment() {
    let device = Topology::grid(7, 7);
    let spec = synthesize(&device, 0.02, 3, 5).expect("synthesis");
    let CodeFamily::Surface { distance } = spec.family else {
        panic!("grid must host a surface code");
    };
    let direct = code_capacity_experiment(distance, 0.02, spec.decoder, 3000, 5);
    // The agent's estimate comes from the same experiment family; both
    // must agree that QEC helps at this rate.
    assert!(spec.estimated_lifetime_extension > 1.0);
    assert!(direct.lifetime_extension() > 1.0);
}

#[test]
fn heavy_hex_device_triggers_the_papers_topology_caveat() {
    // The paper: "requiring the devices to follow a fully-connected
    // lattice design" — heavy-hex forces SWAP embedding.
    let brisbane = Topology::ibm_brisbane_like();
    let spec = synthesize(&brisbane, 0.02, 3, 6).expect("synthesis");
    assert!(!spec.native_layout);
}
