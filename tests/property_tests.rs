//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use qugen::qcir::circuit::Circuit;
use qugen::qcir::gate::Gate;
use qugen::qcir::math::Matrix;
use qugen::qsim::state::StateVector;

/// Strategy: an arbitrary gate with valid parameters.
fn arb_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::Y),
        Just(Gate::Z),
        Just(Gate::S),
        Just(Gate::Sdg),
        Just(Gate::T),
        Just(Gate::Tdg),
        Just(Gate::SX),
        (-6.3f64..6.3).prop_map(Gate::RX),
        (-6.3f64..6.3).prop_map(Gate::RY),
        (-6.3f64..6.3).prop_map(Gate::RZ),
        (-6.3f64..6.3).prop_map(Gate::P),
        (-3.2f64..3.2, -3.2f64..3.2, -3.2f64..3.2).prop_map(|(t, p, l)| Gate::U(t, p, l)),
        Just(Gate::CX),
        Just(Gate::CY),
        Just(Gate::CZ),
        Just(Gate::CH),
        Just(Gate::SWAP),
        (-6.3f64..6.3).prop_map(Gate::CRZ),
        (-6.3f64..6.3).prop_map(Gate::CP),
        Just(Gate::CCX),
        Just(Gate::CSWAP),
    ]
}

/// Strategy: a random circuit over `n` qubits with `len` gates.
fn arb_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((arb_gate(), prop::collection::vec(0..n, 3)), 0..len).prop_map(
        move |ops| {
            let mut qc = Circuit::new(n, n);
            for (gate, mut qs) in ops {
                qs.truncate(gate.num_qubits());
                qs.sort_unstable();
                qs.dedup();
                if qs.len() == gate.num_qubits() {
                    qc.push_gate(gate, &qs);
                }
            }
            qc
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every gate's matrix is unitary, and its inverse matrix composes to
    /// the identity (up to global phase).
    #[test]
    fn gate_matrices_are_unitary(gate in arb_gate()) {
        let m = gate.matrix();
        prop_assert!(m.is_unitary(1e-9));
        let prod = m.matmul(&gate.inverse().matrix());
        prop_assert!(prod.approx_eq_up_to_phase(&Matrix::identity(m.dim()), 1e-8));
    }

    /// State evolution preserves the norm for any circuit.
    #[test]
    fn random_circuits_preserve_norm(qc in arb_circuit(4, 24)) {
        let mut sv = StateVector::zero(4);
        for op in qc.ops() {
            if let qugen::qcir::circuit::Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-8);
    }

    /// Applying a circuit then its inverse returns to |0...0>.
    #[test]
    fn circuit_inverse_undoes(qc in arb_circuit(3, 12)) {
        let mut sv = StateVector::zero(3);
        for op in qc.ops() {
            if let qugen::qcir::circuit::Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        for op in qc.inverse().ops() {
            if let qugen::qcir::circuit::Op::Gate { gate, qubits } = op {
                sv.apply_gate(*gate, qubits);
            }
        }
        let back = StateVector::zero(3);
        prop_assert!((sv.fidelity(&back) - 1.0).abs() < 1e-7);
    }

    /// Pretty-printed circuits parse and lower back to the same circuit.
    #[test]
    fn printer_parser_round_trip(qc in arb_circuit(4, 16)) {
        let mut qc = qc;
        // Make the circuit measurable so NoMeasurement warnings don't matter.
        qc.measure_all();
        let src = qugen::qcir::fmt::to_qasmlite(&qc);
        let program = qugen::qcir::dsl::parse(&src).expect("printer output parses");
        let lowered = qugen::qcir::check::lower(&program).expect("printer output lowers");
        prop_assert_eq!(lowered, qc);
    }

    /// pass@k is monotone in k, bounded by [0,1], and equals c/n at k=1.
    #[test]
    fn pass_at_k_properties(n in 1usize..60, c_frac in 0.0f64..1.0, k_frac in 0.0f64..1.0) {
        let c = ((n as f64) * c_frac) as usize;
        let k = 1 + ((n.saturating_sub(1)) as f64 * k_frac) as usize;
        let p = qugen::qeval::passk::pass_at_k(n, c, k);
        prop_assert!((0.0..=1.0).contains(&p));
        let p1 = qugen::qeval::passk::pass_at_k(n, c, 1);
        prop_assert!((p1 - c as f64 / n as f64).abs() < 1e-9);
        if k < n {
            let p_next = qugen::qeval::passk::pass_at_k(n, c, k + 1);
            prop_assert!(p_next >= p - 1e-12);
        }
    }

    /// Distribution distances are metrics-ish: symmetric and zero on self.
    #[test]
    fn tvd_symmetry(probs in prop::collection::vec(0.0f64..1.0, 4)) {
        use qugen::qsim::dist::Distribution;
        let total: f64 = probs.iter().sum();
        prop_assume!(total > 0.0);
        let mut a = Distribution::new(2);
        for (i, p) in probs.iter().enumerate() {
            a.set(i as u64, p / total);
        }
        let mut b = Distribution::new(2);
        b.set(0, 1.0);
        prop_assert!(a.tvd(&a.clone()) < 1e-12);
        prop_assert!((a.tvd(&b) - b.tvd(&a)).abs() < 1e-12);
        prop_assert!(a.tvd(&b) <= 1.0 + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decoder invariant: for any error pattern on the d=3 code, every
    /// decoder returns a correction that clears the syndrome; for patterns
    /// of weight <= 1 no logical flip survives.
    #[test]
    fn decoders_clear_any_syndrome(pattern in 0u32..(1 << 9)) {
        use qugen::qec::decoder::{Decoder, DecodingGraph, GreedyMatchingDecoder, LookupDecoder, UnionFindDecoder};
        use qugen::qec::surface::SurfaceCode;
        let code = SurfaceCode::new(3);
        let graph = DecodingGraph::code_capacity_x(&code);
        let decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(LookupDecoder::new(&code)),
            Box::new(GreedyMatchingDecoder::new(graph.clone())),
            Box::new(UnionFindDecoder::new(graph.clone())),
        ];
        let errors: Vec<bool> = (0..9).map(|q| (pattern >> q) & 1 == 1).collect();
        let flagged = graph.syndrome_of(&errors);
        for dec in &decoders {
            let mut e = errors.clone();
            dec.decode(&flagged).apply(&mut e);
            prop_assert!(code.z_syndrome(&e).iter().all(|&b| !b), "{} left syndrome", dec.name());
            if pattern.count_ones() <= 1 {
                prop_assert!(!code.is_logical_x_flip(&e), "{} flipped logical", dec.name());
            }
        }
    }

    /// The simulated LLM is deterministic in its seed and its corruption
    /// metadata always matches the emitted source for import channels.
    #[test]
    fn llm_generation_consistency(seed in 0u64..5000) {
        use qugen::qlm::corrupt::Channel;
        use qugen::qlm::model::{CodeLlm, GenConfig};
        use qugen::qlm::spec::TaskSpec;
        let llm = CodeLlm::new();
        let config = GenConfig::base();
        let g = llm.generate(&TaskSpec::Ghz { n: 3 }, &config, seed);
        let g2 = llm.generate(&TaskSpec::Ghz { n: 3 }, &config, seed);
        prop_assert_eq!(&g, &g2);
        if g.applied.contains(&Channel::ImportOmission) {
            prop_assert!(!g.source.contains("import"));
        }
        if g.applied.contains(&Channel::MissingMeasure) {
            prop_assert!(!g.source.contains("measure"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Transpilation preserves the circuit unitary up to global phase.
    #[test]
    fn transpile_preserves_unitary(qc in arb_circuit(3, 10)) {
        use qugen::qcir::transpile::{is_in_basis, transpile};
        use qugen::qsim::state::circuit_unitary;
        let t = transpile(&qc);
        prop_assert!(is_in_basis(&t));
        let ua = circuit_unitary(&strip_to_gates(&qc));
        let ub = circuit_unitary(&strip_to_gates(&t));
        prop_assert!(ua.approx_eq_up_to_phase(&ub, 1e-6));
    }

    /// Routing preserves the measured-outcome distribution and respects
    /// the coupling map.
    #[test]
    fn routing_preserves_distributions(qc in arb_circuit(4, 12)) {
        use qugen::qec::route::{respects_topology, route};
        use qugen::qec::topology::Topology;
        use qugen::qsim::exec::Executor;
        // Route the CX-basis form (routing requires <= 2-qubit gates).
        let mut basis = qugen::qcir::transpile::transpile(&qc);
        basis.measure_all();
        let device = Topology::line(4);
        let routed = route(&basis, &device).expect("line-4 hosts 4 qubits");
        prop_assert!(respects_topology(&routed.circuit, &device));
        let a = Executor::ideal_distribution(&basis, 0);
        let b = Executor::ideal_distribution(&routed.circuit, 0);
        prop_assert!(a.tvd(&b) < 1e-7, "tvd {}", a.tvd(&b));
    }

    /// The Steane code corrects every weight-<=1 X error and always
    /// returns to the codespace.
    #[test]
    fn steane_invariants(pattern in 0u8..128) {
        use qugen::qec::steane::SteaneCode;
        let code = SteaneCode::new();
        let mut errors = [false; 7];
        for (q, e) in errors.iter_mut().enumerate() {
            *e = (pattern >> q) & 1 == 1;
        }
        let corrected = code.correct_x(errors);
        prop_assert_eq!(code.z_syndrome(&corrected), 0);
        if pattern.count_ones() <= 1 {
            prop_assert!(!code.is_logical_x_flip(&corrected));
        }
    }
}

/// Drops non-gate operations so circuits can be compared as unitaries.
fn strip_to_gates(c: &Circuit) -> Circuit {
    let mut out = Circuit::new(c.num_qubits(), 0);
    for op in c.ops() {
        if let qugen::qcir::circuit::Op::Gate { gate, qubits } = op {
            out.push_gate(*gate, qubits);
        }
    }
    out
}
