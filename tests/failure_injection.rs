//! Failure-injection tests: force each corruption channel onto known-good
//! programs and verify the checker/analyzer reports the matching
//! diagnostic class — the contract the multi-pass repair loop depends on.

use qugen::qagents::semantic::SemanticAnalyzerAgent;
use qugen::qcir::diag::DiagCode;
use qugen::qlm::corrupt::{apply, Channel};
use qugen::qlm::spec::TaskSpec;
use qugen::qlm::template::gold_source;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn specs() -> Vec<TaskSpec> {
    vec![
        TaskSpec::BellPair,
        TaskSpec::Ghz { n: 4 },
        TaskSpec::Grover { n: 3, marked: 5 },
        TaskSpec::Qpe { t: 3, phi: 0.125 },
    ]
}

/// Injects `channel` into each spec's gold source and returns the analyzer
/// verdicts (skipping no-op applications where the operator found nothing
/// to corrupt).
fn inject(channel: Channel) -> Vec<(TaskSpec, qugen::qagents::semantic::SemanticAnalysis)> {
    let analyzer = SemanticAnalyzerAgent::new();
    let mut out = Vec::new();
    for spec in specs() {
        let gold = gold_source(&spec);
        let mut rng = StdRng::seed_from_u64(13);
        let corrupted = apply(channel, &gold, &mut rng);
        if corrupted == gold {
            continue; // operator had no site to corrupt in this program
        }
        out.push((spec.clone(), analyzer.analyze(&corrupted, &spec)));
    }
    out
}

#[test]
fn import_omission_reports_missing_import() {
    let results = inject(Channel::ImportOmission);
    assert!(!results.is_empty());
    for (spec, analysis) in results {
        assert!(!analysis.passed(), "{spec}");
        assert!(
            analysis.trace_codes.contains(&DiagCode::MissingImport),
            "{spec}: {:?}",
            analysis.trace_codes
        );
    }
}

#[test]
fn stale_import_reports_version_errors_or_still_works() {
    // 2.0 is harmless (canonical names exist); 1.x breaks modern gates.
    // With the fixed seed the operator picks a specific version; across all
    // specs at least one must surface MissingImport when it picked 1.x, and
    // none may produce an *unknown* crash class.
    let results = inject(Channel::StaleImport);
    assert!(!results.is_empty());
    for (spec, analysis) in &results {
        if !analysis.passed() {
            assert!(
                analysis
                    .trace_codes
                    .iter()
                    .all(|c| matches!(c, DiagCode::MissingImport | DiagCode::UnknownImport)),
                "{spec}: {:?}",
                analysis.trace_codes
            );
        }
    }
}

#[test]
fn deprecated_api_reports_removed_symbol() {
    let results = inject(Channel::DeprecatedApi);
    // Only specs whose programs contain cx/ccx/p sites get corrupted.
    assert!(!results.is_empty());
    for (spec, analysis) in results {
        assert!(!analysis.passed(), "{spec}");
        assert!(
            analysis.trace_codes.contains(&DiagCode::RemovedSymbol),
            "{spec}: {:?}",
            analysis.trace_codes
        );
        // The hint must name the replacement (what the repair model uses).
        assert!(
            analysis.error_trace.contains("use `"),
            "{spec}: {}",
            analysis.error_trace
        );
    }
}

#[test]
fn syntax_error_reports_parse_failure() {
    for (spec, analysis) in inject(Channel::SyntaxError) {
        assert!(!analysis.detail.syntactic_ok, "{spec}");
        assert!(
            analysis
                .trace_codes
                .iter()
                .any(|c| matches!(c, DiagCode::ParseError | DiagCode::LexError)),
            "{spec}: {:?}",
            analysis.trace_codes
        );
    }
}

#[test]
fn missing_measure_fails_semantically_with_flag() {
    for (spec, analysis) in inject(Channel::MissingMeasure) {
        assert!(analysis.detail.syntactic_ok, "{spec} still compiles");
        assert!(!analysis.detail.semantic_ok, "{spec}");
        assert!(analysis.semantic_feedback, "{spec}");
    }
}

#[test]
fn truncation_breaks_or_degrades() {
    for (spec, analysis) in inject(Channel::Truncation) {
        // A truncated program either fails to run or runs incorrectly;
        // it must never grade as a full pass.
        assert!(!analysis.passed(), "{spec}");
    }
}

#[test]
fn index_error_is_caught_or_changes_semantics() {
    for (spec, analysis) in inject(Channel::IndexError) {
        assert!(!analysis.passed(), "{spec}");
        if !analysis.detail.syntactic_ok {
            assert!(
                analysis
                    .trace_codes
                    .iter()
                    .any(|c| matches!(c, DiagCode::QubitOutOfRange | DiagCode::DuplicateQubit)),
                "{spec}: {:?}",
                analysis.trace_codes
            );
        }
    }
}

#[test]
fn wrong_params_degrades_semantics_only() {
    for (spec, analysis) in inject(Channel::WrongParams) {
        // Angle perturbation keeps the program compiling.
        assert!(analysis.detail.syntactic_ok, "{spec}");
    }
}

#[test]
fn repair_addresses_exactly_the_reported_channel() {
    use qugen::qlm::model::channels_addressed;
    // The repair model's trace-code -> channel mapping must cover every
    // failure class the analyzer can emit for injected corruption.
    for channel in [
        Channel::ImportOmission,
        Channel::DeprecatedApi,
        Channel::SyntaxError,
    ] {
        for (spec, analysis) in inject(channel) {
            if analysis.trace_codes.is_empty() {
                continue;
            }
            let addressed = channels_addressed(&analysis.trace_codes);
            assert!(
                addressed.contains(&channel),
                "{spec}: channel {channel} not addressed by {:?}",
                analysis.trace_codes
            );
        }
    }
}
