//! # qugen — multi-agent quantum code generation with QEC
//!
//! Facade crate for the [DAC'25 paper reproduction](https://arxiv.org/abs/2504.14557)
//! "Enhancing LLM-based Quantum Code Generation with Multi-Agent Optimization
//! and Quantum Error Correction". It re-exports every subsystem crate so that
//! examples and downstream users can depend on a single package.
//!
//! - [`qcir`] — circuit IR + the QasmLite DSL and versioned API registry
//! - [`qsim`] — state-vector & stabilizer simulators with noise models
//! - [`qec`] — surface/repetition codes, decoders, device topologies
//! - [`qalgo`] — reference quantum algorithm library
//! - [`qlm`] — mechanistic simulated code LLM (templates + corruption channels)
//! - [`qagents`] — the three-agent framework and multi-pass optimization loop
//! - [`qeval`] — evaluation suites, grader and pass@k
//! - [`qugen_serve`] — simulation-as-a-service job daemon over the executor
//! - [`qugen_shard`] — multi-process evaluation sharding with bit-identical merge
//!
//! # Quickstart
//!
//! ```no_run
//! use qugen::qagents::orchestrator::{Orchestrator, PipelineConfig};
//! use qugen::qeval::suite::test_suite;
//!
//! let suite = test_suite();
//! let orchestrator = Orchestrator::new(PipelineConfig::default());
//! let report = orchestrator.run_task(&suite[0], 42);
//! println!("{}", report.summary());
//! ```

pub use qagents;
pub use qalgo;
pub use qcir;
pub use qec;
pub use qeval;
pub use qlm;
pub use qsim;
pub use qugen_serve;
pub use qugen_shard;
